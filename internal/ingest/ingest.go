// Package ingest is the fault-tolerance layer between configuration
// sources and the unified representation. ConfValley validates *before*
// deployment against configuration pulled from many heterogeneous,
// unreliable sources — files mid-edit, flaky REST endpoints, malformed
// formats — and real cloud corpora are full of partially-broken text
// configs that must be ingested anyway (ConfEx). The raw driver layer is
// all-or-nothing: one parse error in driver.LoadInto aborts the entire
// load. This package wraps it with per-source outcomes:
//
//   - a malformed or unreadable source is *quarantined* into a
//     structured LoadReport entry (source, driver, error, instance
//     count) instead of aborting the batch;
//   - a Loader retained across validation rounds keeps the *last good
//     parse* of every source, so a torn mid-write file degrades that one
//     source to stale data instead of killing the round, with the
//     staleness (and its age in rounds) surfaced in the report;
//   - loading honors a context: a deadline or Ctrl-C stops between
//     sources and marks the report interrupted;
//   - a driver that panics on hostile input is contained to a per-source
//     quarantine, same as a parse error.
package ingest

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"confvalley/internal/config"
	"confvalley/internal/driver"
)

// Source describes one configuration source to load.
type Source struct {
	// Name is the source's identity: a file path, a REST endpoint URL,
	// or a registered in-memory name. It is the provenance recorded on
	// every instance and the key under which last-good parses are kept.
	Name string
	// Format is the driver name; empty infers from the file extension.
	Format string
	// Scope optionally prefixes every key (the CPL "load ... as Scope"
	// form).
	Scope string
	// Fetch retrieves the raw bytes. Nil reads the file at Name from
	// disk. The rest driver ignores the bytes' content beyond the URL,
	// so REST sources pass the URL itself.
	Fetch func(ctx context.Context) ([]byte, error)
}

// Outcome is one source's per-round result.
type Outcome struct {
	Source string `json:"source"`
	Driver string `json:"driver"`
	// Instances contributed to the store this round (fresh or stale).
	Instances int `json:"instances"`
	// Err is the fetch/parse failure, empty on a clean load.
	Err string `json:"err,omitempty"`
	// Stale means the source failed this round but its last good parse
	// was served instead.
	Stale bool `json:"stale,omitempty"`
	// StaleRounds counts consecutive rounds this source has been served
	// stale (1 on the first failing round).
	StaleRounds int `json:"stale_rounds,omitempty"`
	// Quarantined means the source contributed nothing this round: it
	// failed and no last good parse was available (or the parse outlived
	// MaxStale).
	Quarantined bool `json:"quarantined,omitempty"`
}

// LoadReport aggregates one load round's per-source outcomes.
type LoadReport struct {
	Outcomes []Outcome `json:"outcomes"`
	// Interrupted marks a load cut off by context cancellation; sources
	// after the cut contributed nothing and have no outcome.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Loaded counts sources that contributed fresh instances this round.
func (r *LoadReport) Loaded() int { return r.count(func(o Outcome) bool { return o.Err == "" }) }

// Stale counts sources served from their last good parse.
func (r *LoadReport) Stale() int { return r.count(func(o Outcome) bool { return o.Stale }) }

// Quarantined counts sources that contributed nothing.
func (r *LoadReport) Quarantined() int {
	return r.count(func(o Outcome) bool { return o.Quarantined })
}

// Instances totals the instances contributed across all sources.
func (r *LoadReport) Instances() int {
	n := 0
	for _, o := range r.Outcomes {
		n += o.Instances
	}
	return n
}

// AllFailed reports whether every source failed to contribute data —
// the condition under which a round has nothing at all to validate.
// False for an empty source list.
func (r *LoadReport) AllFailed() bool {
	if len(r.Outcomes) == 0 {
		return false
	}
	return r.Quarantined() == len(r.Outcomes)
}

// Degraded reports whether any source failed this round (stale or
// quarantined).
func (r *LoadReport) Degraded() bool {
	return r.count(func(o Outcome) bool { return o.Err != "" }) > 0
}

func (r *LoadReport) count(f func(Outcome) bool) int {
	n := 0
	for _, o := range r.Outcomes {
		if f(o) {
			n++
		}
	}
	return n
}

// Render writes a compact human-readable load summary, one line per
// degraded source plus a totals line when anything degraded.
func (r *LoadReport) Render(w interface{ Write([]byte) (int, error) }) {
	for _, o := range r.Outcomes {
		switch {
		case o.Quarantined:
			fmt.Fprintf(w, "load: QUARANTINED %s (%s): %s\n", o.Source, o.Driver, o.Err)
		case o.Stale:
			fmt.Fprintf(w, "load: STALE %s (%s): serving last good parse (%d instance(s), %d round(s) old): %s\n",
				o.Source, o.Driver, o.Instances, o.StaleRounds, o.Err)
		}
	}
	if r.Interrupted {
		fmt.Fprintf(w, "load: interrupted before all sources were read\n")
	}
}

// lastGood is the retained parse of one source.
type lastGood struct {
	ins         []*config.Instance
	staleRounds int
}

// Loader loads batches of sources with graceful degradation, retaining
// each source's last good parse across rounds. The zero value is ready
// to use. A Loader is safe for concurrent use; watch-style callers keep
// one alive for the life of the session so a source torn mid-write in
// round N serves round N-1's parse.
type Loader struct {
	// MaxStale bounds how many consecutive rounds a failing source is
	// served from its last good parse before it degrades to quarantined.
	// 0 means serve stale data indefinitely; negative disables stale
	// serving entirely (every failure quarantines).
	MaxStale int

	mu   sync.Mutex
	good map[string]*lastGood
}

// NewLoader returns a Loader with the given staleness bound.
func NewLoader(maxStale int) *Loader { return &Loader{MaxStale: maxStale} }

// Load fetches, parses and stores every source, never aborting the batch
// on a per-source failure: failed sources are served stale (within
// MaxStale) or quarantined, and the returned LoadReport accounts for
// every source examined. Cancellation between sources stops the batch
// with Interrupted set.
func (l *Loader) Load(ctx context.Context, st *config.Store, sources []Source) *LoadReport {
	rep := &LoadReport{}
	for _, src := range sources {
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		rep.Outcomes = append(rep.Outcomes, l.loadOne(ctx, st, src))
	}
	return rep
}

// loadOne handles one source: fetch, parse (panic-contained), store, and
// last-good bookkeeping.
func (l *Loader) loadOne(ctx context.Context, st *config.Store, src Source) Outcome {
	format := src.Format
	if format == "" {
		format = FormatFromPath(src.Name)
	}
	out := Outcome{Source: src.Name, Driver: format}
	ins, err := fetchAndParse(ctx, src, format)
	if err == nil {
		st.AddAll(ins)
		out.Instances = len(ins)
		l.mu.Lock()
		if l.good == nil {
			l.good = make(map[string]*lastGood)
		}
		l.good[src.Name] = &lastGood{ins: ins}
		l.mu.Unlock()
		return out
	}
	out.Err = err.Error()
	// Degrade: serve the last good parse when one exists and is not too
	// stale. Instances are immutable once parsed, so re-adding the same
	// pointers to a fresh store is sound.
	l.mu.Lock()
	g := l.good[src.Name]
	if g != nil {
		g.staleRounds++
		if l.MaxStale < 0 || (l.MaxStale > 0 && g.staleRounds > l.MaxStale) {
			g = nil
		}
	}
	var stale []*config.Instance
	var rounds int
	if g != nil {
		stale, rounds = g.ins, g.staleRounds
	}
	l.mu.Unlock()
	if stale != nil {
		st.AddAll(stale)
		out.Instances = len(stale)
		out.Stale = true
		out.StaleRounds = rounds
		return out
	}
	out.Quarantined = true
	return out
}

// fetchAndParse reads a source's bytes and parses them, converting a
// fetch error, parse error or driver panic into a per-source error.
func fetchAndParse(ctx context.Context, src Source, format string) (ins []*config.Instance, err error) {
	defer func() {
		if r := recover(); r != nil {
			ins, err = nil, fmt.Errorf("driver %s: panic parsing %s: %v", format, src.Name, r)
		}
	}()
	var data []byte
	if src.Fetch != nil {
		data, err = src.Fetch(ctx)
	} else {
		data, err = os.ReadFile(src.Name)
	}
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", src.Name, err)
	}
	return driver.ParseScoped(ctx, format, data, src.Name, src.Scope)
}

// FormatFromPath guesses a driver name from a file extension; the root
// package re-exports the same mapping.
func FormatFromPath(path string) string {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 {
		return "kv"
	}
	switch strings.ToLower(path[dot:]) {
	case ".xml":
		return "xml"
	case ".ini", ".conf", ".cfg":
		return "ini"
	case ".json":
		return "json"
	case ".yaml", ".yml":
		return "yaml"
	case ".csv":
		return "csv"
	default:
		return "kv"
	}
}

// Forget drops a source's retained last-good parse (test hygiene, or a
// source administratively removed from the set).
func (l *Loader) Forget(name string) {
	l.mu.Lock()
	delete(l.good, name)
	l.mu.Unlock()
}
