package ingest

import (
	"fmt"
	"testing"

	"confvalley/internal/config"
)

func TestSourceDigestFraming(t *testing.T) {
	base := SourceDigest("a.kv", "kv", "", []byte("x = 1\n"))
	if got := SourceDigest("a.kv", "kv", "", []byte("x = 1\n")); got != base {
		t.Error("digest not deterministic")
	}
	// Every field participates, and framing keeps boundary shifts apart.
	variants := []string{
		SourceDigest("b.kv", "kv", "", []byte("x = 1\n")),
		SourceDigest("a.kv", "ini", "", []byte("x = 1\n")),
		SourceDigest("a.kv", "kv", "App", []byte("x = 1\n")),
		SourceDigest("a.kv", "kv", "", []byte("x = 2\n")),
		SourceDigest("a.kvk", "v", "", []byte("x = 1\n")),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collided", i)
		}
		seen[v] = true
	}

	one := CombineDigests([]string{base})
	if one != base {
		t.Error("single-source combine should be the source digest itself")
	}
	two := CombineDigests([]string{base, variants[0]})
	if two == CombineDigests([]string{variants[0], base}) {
		t.Error("combined digest ignores source order")
	}
}

func TestSnapshotCacheLRU(t *testing.T) {
	c := NewSnapshotCache(2)
	mk := func(i int) (*config.Store, *LoadReport) {
		st := config.NewStore()
		st.Add(&config.Instance{Key: config.K("App", "n"), Value: fmt.Sprint(i)})
		return st, &LoadReport{}
	}
	s1, r1 := mk(1)
	s2, r2 := mk(2)
	s3, r3 := mk(3)
	c.Put("k1", s1, r1)
	c.Put("k2", s2, r2)

	if got, _, ok := c.Get("k1"); !ok || got != s1 {
		t.Fatal("k1 miss after put")
	}
	// k2 is now LRU; inserting k3 evicts it.
	c.Put("k3", s3, r3)
	if _, _, ok := c.Get("k2"); ok {
		t.Error("k2 survived past capacity")
	}
	if _, _, ok := c.Get("k1"); !ok {
		t.Error("recently-used k1 evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestSnapshotCacheNilSafe(t *testing.T) {
	var c *SnapshotCache = NewSnapshotCache(0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.Put("k", config.NewStore(), &LoadReport{})
	if _, _, ok := c.Get("k"); ok {
		t.Error("nil cache returned a hit")
	}
	if c.Len() != 0 || c.Stats() != (SnapshotCacheStats{}) {
		t.Error("nil cache stats not zero")
	}
}
