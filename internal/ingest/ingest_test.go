package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"confvalley/internal/config"
)

func memSource(name, format string, data []byte) Source {
	return Source{Name: name, Format: format, Fetch: func(context.Context) ([]byte, error) { return data, nil }}
}

func failSource(name, format string, err error) Source {
	return Source{Name: name, Format: format, Fetch: func(context.Context) ([]byte, error) { return nil, err }}
}

var goodJSON = []byte(`{"app": {"timeout": "30", "name": "svc"}}`)

func TestLoadCleanBatch(t *testing.T) {
	l := NewLoader(0)
	st := config.NewStore()
	rep := l.Load(context.Background(), st, []Source{
		memSource("a.json", "json", goodJSON),
		memSource("b.kv", "kv", []byte("port = 8080\n")),
	})
	if rep.Loaded() != 2 || rep.Stale() != 0 || rep.Quarantined() != 0 {
		t.Fatalf("clean batch accounting: loaded=%d stale=%d quarantined=%d", rep.Loaded(), rep.Stale(), rep.Quarantined())
	}
	if rep.Instances() != 3 {
		t.Fatalf("instances = %d, want 3", rep.Instances())
	}
	if rep.Degraded() || rep.AllFailed() {
		t.Fatalf("clean batch reported degraded=%v allFailed=%v", rep.Degraded(), rep.AllFailed())
	}
	pat, _ := config.ParsePattern("app.timeout")
	if got := len(st.Discover(pat)); got != 1 {
		t.Fatalf("store has %d app.timeout instances, want 1", got)
	}
}

// A malformed source with no retained parse quarantines; the rest of the
// batch still loads.
func TestMalformedSourceQuarantined(t *testing.T) {
	l := NewLoader(0)
	st := config.NewStore()
	rep := l.Load(context.Background(), st, []Source{
		memSource("bad.json", "json", []byte(`{"app":`)),
		memSource("good.json", "json", goodJSON),
	})
	if rep.Loaded() != 1 || rep.Quarantined() != 1 || rep.Stale() != 0 {
		t.Fatalf("accounting: loaded=%d stale=%d quarantined=%d", rep.Loaded(), rep.Stale(), rep.Quarantined())
	}
	o := rep.Outcomes[0]
	if !o.Quarantined || o.Err == "" || o.Instances != 0 {
		t.Fatalf("bad source outcome = %+v", o)
	}
	if rep.AllFailed() {
		t.Fatalf("AllFailed with one healthy source")
	}
	if !rep.Degraded() {
		t.Fatalf("Degraded not set with a quarantined source")
	}
}

func TestStaleServingAndRecovery(t *testing.T) {
	l := NewLoader(0) // serve stale forever
	good := memSource("s.json", "json", goodJSON)
	bad := memSource("s.json", "json", []byte("{torn"))

	load := func(src Source) Outcome {
		st := config.NewStore()
		rep := l.Load(context.Background(), st, []Source{src})
		return rep.Outcomes[0]
	}

	if o := load(good); o.Err != "" || o.Instances != 2 {
		t.Fatalf("good round: %+v", o)
	}
	for round := 1; round <= 3; round++ {
		o := load(bad)
		if !o.Stale || o.Quarantined || o.Instances != 2 || o.StaleRounds != round {
			t.Fatalf("bad round %d: %+v", round, o)
		}
	}
	// Recovery resets the staleness clock.
	if o := load(good); o.Err != "" || o.Stale {
		t.Fatalf("recovered round: %+v", o)
	}
	if o := load(bad); !o.Stale || o.StaleRounds != 1 {
		t.Fatalf("first bad round after recovery: %+v", o)
	}
}

func TestMaxStaleBoundsServing(t *testing.T) {
	l := NewLoader(2)
	good := memSource("s.json", "json", goodJSON)
	bad := memSource("s.json", "json", []byte("{torn"))
	load := func(src Source) Outcome {
		rep := l.Load(context.Background(), config.NewStore(), []Source{src})
		return rep.Outcomes[0]
	}
	load(good)
	if o := load(bad); !o.Stale || o.StaleRounds != 1 {
		t.Fatalf("round 1: %+v", o)
	}
	if o := load(bad); !o.Stale || o.StaleRounds != 2 {
		t.Fatalf("round 2: %+v", o)
	}
	if o := load(bad); !o.Quarantined || o.Stale {
		t.Fatalf("round 3 should exceed MaxStale=2: %+v", o)
	}
}

func TestNegativeMaxStaleNeverServes(t *testing.T) {
	l := NewLoader(-1)
	load := func(src Source) Outcome {
		rep := l.Load(context.Background(), config.NewStore(), []Source{src})
		return rep.Outcomes[0]
	}
	load(memSource("s.json", "json", goodJSON))
	if o := load(memSource("s.json", "json", []byte("{torn"))); !o.Quarantined {
		t.Fatalf("MaxStale<0 served stale: %+v", o)
	}
}

func TestAllFailed(t *testing.T) {
	l := NewLoader(0)
	rep := l.Load(context.Background(), config.NewStore(), []Source{
		failSource("a", "json", errors.New("down")),
		memSource("b.json", "json", []byte("{nope")),
	})
	if !rep.AllFailed() {
		t.Fatalf("AllFailed = false with every source quarantined")
	}
	empty := l.Load(context.Background(), config.NewStore(), nil)
	if empty.AllFailed() {
		t.Fatalf("AllFailed = true for an empty source list")
	}
}

func TestLoadInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	l := NewLoader(0)
	sources := []Source{
		Source{Name: "a.json", Format: "json", Fetch: func(context.Context) ([]byte, error) {
			cancel() // Ctrl-C lands while the first source is in flight
			return goodJSON, nil
		}},
		memSource("b.json", "json", goodJSON),
	}
	rep := l.Load(ctx, config.NewStore(), sources)
	if !rep.Interrupted {
		t.Fatalf("Interrupted not set")
	}
	if len(rep.Outcomes) != 1 {
		t.Fatalf("outcomes = %d, want 1 (the source already in flight)", len(rep.Outcomes))
	}
}

// A panicking fetch (or driver) is contained to a per-source failure.
func TestPanickingFetchContained(t *testing.T) {
	l := NewLoader(0)
	rep := l.Load(context.Background(), config.NewStore(), []Source{
		Source{Name: "p.json", Format: "json", Fetch: func(context.Context) ([]byte, error) { panic("hostile input") }},
		memSource("ok.json", "json", goodJSON),
	})
	o := rep.Outcomes[0]
	if !o.Quarantined || !strings.Contains(o.Err, "panic") {
		t.Fatalf("panicking source outcome = %+v", o)
	}
	if rep.Loaded() != 1 {
		t.Fatalf("healthy source did not load after sibling panic")
	}
}

func TestFileSourceAndFormatInference(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.json")
	if err := os.WriteFile(path, goodJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(0)
	rep := l.Load(context.Background(), config.NewStore(), []Source{{Name: path}})
	if o := rep.Outcomes[0]; o.Err != "" || o.Driver != "json" || o.Instances != 2 {
		t.Fatalf("file source outcome = %+v", o)
	}
	// Unreadable file: per-source failure, not an abort.
	rep = l.Load(context.Background(), config.NewStore(), []Source{{Name: filepath.Join(dir, "missing.ini")}})
	if o := rep.Outcomes[0]; !o.Quarantined || !strings.Contains(o.Err, "missing.ini") {
		t.Fatalf("missing file outcome = %+v", o)
	}
}

func TestForgetDropsLastGood(t *testing.T) {
	l := NewLoader(0)
	load := func(src Source) Outcome {
		rep := l.Load(context.Background(), config.NewStore(), []Source{src})
		return rep.Outcomes[0]
	}
	load(memSource("s.json", "json", goodJSON))
	l.Forget("s.json")
	if o := load(memSource("s.json", "json", []byte("{torn"))); !o.Quarantined {
		t.Fatalf("forgotten source served stale: %+v", o)
	}
}

func TestRenderMentionsDegradedSources(t *testing.T) {
	l := NewLoader(0)
	load := func(srcs ...Source) *LoadReport {
		return l.Load(context.Background(), config.NewStore(), srcs)
	}
	load(memSource("stale.json", "json", goodJSON))
	rep := load(
		memSource("stale.json", "json", []byte("{torn")),
		memSource("quar.json", "json", []byte("{nope")),
	)
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	if !strings.Contains(out, "STALE stale.json") || !strings.Contains(out, "QUARANTINED quar.json") {
		t.Fatalf("render missing degraded sources:\n%s", out)
	}
}

func TestScopePrefixesKeys(t *testing.T) {
	l := NewLoader(0)
	st := config.NewStore()
	src := memSource("a.json", "json", goodJSON)
	src.Scope = "Prod"
	l.Load(context.Background(), st, []Source{src})
	pat, _ := config.ParsePattern("Prod.app.timeout")
	if got := len(st.Discover(pat)); got != 1 {
		t.Fatalf("scoped key not found (got %d)", got)
	}
}

func TestFormatFromPath(t *testing.T) {
	for _, tc := range []struct{ path, want string }{
		{"a.xml", "xml"}, {"a.ini", "ini"}, {"a.conf", "ini"}, {"a.cfg", "ini"},
		{"a.json", "json"}, {"a.yaml", "yaml"}, {"a.yml", "yaml"}, {"a.csv", "csv"},
		{"a.txt", "kv"}, {"noext", "kv"},
	} {
		if got := FormatFromPath(tc.path); got != tc.want {
			t.Errorf("FormatFromPath(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestConcurrentLoadRounds(t *testing.T) {
	l := NewLoader(0)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 25; i++ {
				data := goodJSON
				if i%3 == 0 {
					data = []byte("{torn")
				}
				rep := l.Load(context.Background(), config.NewStore(), []Source{
					memSource(fmt.Sprintf("w%d.json", w), "json", data),
					memSource("shared.json", "json", data),
				})
				if len(rep.Outcomes) != 2 {
					err = fmt.Errorf("worker %d: %d outcomes", w, len(rep.Outcomes))
					break
				}
			}
			done <- err
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
