package infer

import (
	"fmt"
	"strings"
	"testing"

	"confvalley/internal/compiler"
	"confvalley/internal/config"
	"confvalley/internal/engine"
)

// addClass populates n instances of one class with generated values.
func addClass(st *config.Store, class string, n int, gen func(i int) string) {
	segs := strings.Split(class, ".")
	for i := 0; i < n; i++ {
		key := config.Key{}
		for j, s := range segs {
			seg := config.Seg{Name: s}
			if j < len(segs)-1 {
				seg.Inst = fmt.Sprintf("i%d", i)
			}
			key.Segs = append(key.Segs, seg)
		}
		st.Add(&config.Instance{Key: key, Value: gen(i), Source: "gen"})
	}
}

func kinds(cs []Constraint) map[Kind]bool {
	out := make(map[Kind]bool)
	for _, c := range cs {
		out[c.Kind] = true
	}
	return out
}

func TestInferIntRangeUnique(t *testing.T) {
	st := config.NewStore()
	addClass(st, "Node.Port", 50, func(i int) string { return fmt.Sprintf("%d", 8000+i) })
	res := Infer(st, Defaults())
	ks := kinds(res.PerClass["Node.Port"])
	if !ks[KindType] || !ks[KindNonempty] || !ks[KindRange] || !ks[KindUniqueness] {
		t.Errorf("constraints = %+v", res.PerClass["Node.Port"])
	}
	var rangeC Constraint
	for _, c := range res.PerClass["Node.Port"] {
		if c.Kind == KindRange {
			rangeC = c
		}
		if c.Kind == KindType && c.CPL != "port" {
			t.Errorf("type = %s, want port", c.CPL)
		}
	}
	if rangeC.CPL != "[8000, 8049]" {
		t.Errorf("range = %q", rangeC.CPL)
	}
}

func TestInferConsistency(t *testing.T) {
	st := config.NewStore()
	addClass(st, "Cluster.OSPath", 30, func(int) string { return `\\share\OS\v2` })
	res := Infer(st, Defaults())
	ks := kinds(res.PerClass["Cluster.OSPath"])
	if !ks[KindConsistency] || !ks[KindType] {
		t.Errorf("constraints = %+v", res.PerClass["Cluster.OSPath"])
	}
	if ks[KindUniqueness] {
		t.Error("constant class must not be unique")
	}
}

func TestInferEnum(t *testing.T) {
	st := config.NewStore()
	// ln(60) ≈ 4.09 ≥ 3 distinct values.
	addClass(st, "Tenant.Type", 60, func(i int) string {
		return []string{"compute", "storage", "network"}[i%3]
	})
	res := Infer(st, Defaults())
	ks := kinds(res.PerClass["Tenant.Type"])
	if !ks[KindEnum] {
		t.Errorf("constraints = %+v", res.PerClass["Tenant.Type"])
	}
	// Too many distinct values for the sample size: no enum.
	st2 := config.NewStore()
	addClass(st2, "T.K", 20, func(i int) string { // ln(20) ≈ 3.0 < 5
		return []string{"a1", "b2", "c3", "d4", "e5"}[i%5]
	})
	res2 := Infer(st2, Defaults())
	if kinds(res2.PerClass["T.K"])[KindEnum] {
		t.Error("enum inferred despite ln(n) < |set|")
	}
}

func TestBooleanExclusions(t *testing.T) {
	st := config.NewStore()
	addClass(st, "F.MonitorNodeHealth", 100, func(i int) string {
		if i%2 == 0 {
			return "True"
		}
		return "False"
	})
	res := Infer(st, Defaults())
	ks := kinds(res.PerClass["F.MonitorNodeHealth"])
	if !ks[KindType] {
		t.Error("bool type should be inferred")
	}
	if ks[KindEnum] {
		t.Error("boolean enum is vacuous and must be skipped")
	}
}

func TestTypeOrderingMixedListAndScalar(t *testing.T) {
	// §4.5: some instances are ints, others comma-separated lists of
	// ints → infer list-of-int.
	st := config.NewStore()
	addClass(st, "F.RetryIntervals", 40, func(i int) string {
		if i%4 == 0 {
			return "30"
		}
		return "30,60,120"
	})
	res := Infer(st, Defaults())
	var typeCPL string
	for _, c := range res.PerClass["F.RetryIntervals"] {
		if c.Kind == KindType {
			typeCPL = c.CPL
		}
	}
	if typeCPL != "list(int)" && typeCPL != "list(port)" {
		t.Errorf("type = %q, want list(int)", typeCPL)
	}
}

func TestNoiseToleranceThreshold(t *testing.T) {
	// 10% garbage: type should not be inferred at a 95% threshold.
	st := config.NewStore()
	addClass(st, "F.Mixed", 100, func(i int) string {
		if i%10 == 0 {
			return "not-a-number"
		}
		return fmt.Sprintf("%d", i)
	})
	res := Infer(st, Defaults())
	if kinds(res.PerClass["F.Mixed"])[KindType] {
		t.Error("type inferred despite 10% noise at 95% threshold")
	}
	// Relaxed threshold accepts it.
	opts := Defaults()
	opts.TypeThreshold = 0.85
	res = Infer(st, opts)
	if !kinds(res.PerClass["F.Mixed"])[KindType] {
		t.Error("relaxed threshold should infer the type")
	}
}

func TestEqualityClustering(t *testing.T) {
	st := config.NewStore()
	secret := "3F2504E0-4F89-11D3-9A0C-0305E82C3301"
	addClass(st, "Controller.SecretKey", 25, func(int) string { return secret })
	addClass(st, "Auth.SecretKey", 25, func(int) string { return secret })
	addClass(st, "Web.ApiKey", 25, func(int) string { return secret })
	// Short value: excluded (len < 6).
	addClass(st, "A.Flag", 25, func(int) string { return "abc" })
	addClass(st, "B.Flag", 25, func(int) string { return "abc" })
	// Too few instances: excluded (< 20).
	addClass(st, "C.Key", 5, func(int) string { return secret })
	res := Infer(st, Defaults())
	var eqs []Constraint
	for _, c := range res.Constraints {
		if c.Kind == KindEquality {
			eqs = append(eqs, c)
		}
	}
	if len(eqs) != 2 { // chain over 3 classes
		t.Fatalf("equalities = %+v", eqs)
	}
	for _, c := range eqs {
		if strings.Contains(c.Class, "Flag") || strings.Contains(c.CPL, "C.Key") {
			t.Errorf("excluded class leaked into equality: %+v", c)
		}
	}
}

func TestEmptyValuesBlockNonempty(t *testing.T) {
	st := config.NewStore()
	addClass(st, "F.Desc", 20, func(i int) string {
		if i == 3 {
			return ""
		}
		return fmt.Sprintf("desc %d", i)
	})
	res := Infer(st, Defaults())
	if kinds(res.PerClass["F.Desc"])[KindNonempty] {
		t.Error("nonempty inferred despite empty sample")
	}
}

func TestHistogram(t *testing.T) {
	st := config.NewStore()
	addClass(st, "A.IncidentOwner", 30, func(i int) string {
		if i%5 == 0 {
			return "" // unset for some instances: no constraint inferable
		}
		return fmt.Sprintf("free text %d about owner", i*7%13)
	})
	addClass(st, "A.Port", 30, func(i int) string { return fmt.Sprintf("%d", 8000+i) })
	res := Infer(st, Defaults())
	h := res.Histogram(4)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != res.ClassesAnalyzed {
		t.Errorf("histogram total = %d, classes = %d", total, res.ClassesAnalyzed)
	}
	if h[0] == 0 {
		t.Errorf("free-text class should land in bucket 0: %v", h)
	}
}

func TestGeneratedCPLCompilesAndValidates(t *testing.T) {
	// Round trip: infer on good data, compile the generated CPL, run it
	// back over the same data — the good corpus must pass its own
	// inferred specifications.
	st := config.NewStore()
	addClass(st, "Node.Port", 50, func(i int) string { return fmt.Sprintf("%d", 8000+i) })
	addClass(st, "Cluster.OSPath", 30, func(int) string { return `\\share\OS\v2` })
	addClass(st, "Tenant.Type", 60, func(i int) string { return []string{"compute", "storage"}[i%2] })
	res := Infer(st, Defaults())
	src := res.GenerateCPL()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("generated CPL does not compile: %v\n%s", err, src)
	}
	rep := engine.New(st).Run(prog)
	if !rep.Passed() {
		t.Errorf("good corpus violates its own inferred specs:\n%v\n%v", rep.Violations, rep.SpecErrors)
	}
	// A bad value is caught by the inferred specs.
	st.Add(&config.Instance{Key: config.K("Node::x", "Port"), Value: "not-a-port"})
	rep = engine.New(st).Run(prog)
	if rep.Passed() {
		t.Error("inferred specs should catch the bad value")
	}
}

func TestCountByKindFoldsEnumIntoRange(t *testing.T) {
	st := config.NewStore()
	addClass(st, "Tenant.Type", 60, func(i int) string { return []string{"compute", "storage"}[i%2] })
	res := Infer(st, Defaults())
	counts := res.CountByKind()
	if counts["Enum"] != 0 || counts["Range"] == 0 {
		t.Errorf("counts = %v", counts)
	}
}
