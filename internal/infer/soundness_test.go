package infer

import (
	"fmt"
	"math/rand"
	"testing"

	"confvalley/internal/compiler"
	"confvalley/internal/config"
	"confvalley/internal/engine"
)

// randomTrainingCorpus builds corpora mixing every value shape inference
// handles: constants, ranges, lists, sparse empties, duplicates, free
// text, near-identical long values.
func randomTrainingCorpus(rng *rand.Rand, nClasses int) *config.Store {
	st := config.NewStore()
	for c := 0; c < nClasses; c++ {
		scope := fmt.Sprintf("Svc%d", c%6)
		param := fmt.Sprintf("K%d", c)
		n := 5 + rng.Intn(40)
		kind := rng.Intn(9)
		constVal := fmt.Sprintf("constant-value-%d", rng.Intn(4))
		for i := 0; i < n; i++ {
			var v string
			switch kind {
			case 0:
				v = constVal
			case 1:
				v = fmt.Sprintf("%d", 100+rng.Intn(20))
			case 2:
				v = fmt.Sprintf("10.8.%d.%d", c%200, 1+i%250)
			case 3:
				v = []string{"true", "false"}[rng.Intn(2)]
			case 4:
				if rng.Intn(4) == 0 {
					v = ""
				} else {
					v = fmt.Sprintf("10.9.0.%d", 1+rng.Intn(250))
				}
			case 5:
				v = fmt.Sprintf("%d,%d", rng.Intn(50), 50+rng.Intn(50))
			case 6:
				v = []string{"alpha", "beta", "gamma"}[rng.Intn(3)]
			case 7:
				v = fmt.Sprintf("free text %d %d", rng.Intn(5), rng.Intn(5))
			default:
				v = fmt.Sprintf("%.2f", rng.Float64()*10)
			}
			st.Add(&config.Instance{
				Key: config.Key{Segs: []config.Seg{
					{Name: "Env", Inst: fmt.Sprintf("e%d", i%5), Index: i%5 + 1},
					{Name: scope},
					{Name: param},
				}},
				Value: v,
			})
		}
	}
	return st
}

// Soundness property: for any corpus, the specifications inference mines
// from it must compile and must hold on that same corpus — inference
// never generates a constraint its own evidence violates.
func TestPropInferenceSoundOnTrainingData(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := randomTrainingCorpus(rng, 20)
		res := Infer(st, Defaults())
		src := res.GenerateCPL()
		prog, err := compiler.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated CPL does not compile: %v\n%s", seed, err, src)
		}
		rep := engine.New(st).Run(prog)
		if len(rep.SpecErrors) > 0 {
			t.Fatalf("seed %d: spec errors: %v", seed, rep.SpecErrors)
		}
		if len(rep.Violations) != 0 {
			for i, v := range rep.Violations {
				if i > 3 {
					break
				}
				t.Logf("  %s", v)
			}
			t.Errorf("seed %d: training corpus violates its own inferred specs (%d violations)",
				seed, len(rep.Violations))
		}
		// The verbose rendering is sound too.
		vprog, err := compiler.Compile(res.GenerateVerboseCPL())
		if err != nil {
			t.Fatalf("seed %d: verbose CPL does not compile: %v", seed, err)
		}
		if rep := engine.New(st).Run(vprog); len(rep.Violations) != 0 || len(rep.SpecErrors) != 0 {
			t.Errorf("seed %d: verbose form disagrees: %d violations, %d errors",
				seed, len(rep.Violations), len(rep.SpecErrors))
		}
	}
}
