package infer

import (
	"fmt"
	"strings"
	"testing"

	"confvalley/internal/compiler"
	"confvalley/internal/config"
)

func TestEmptyStoreInference(t *testing.T) {
	res := Infer(config.NewStore(), Defaults())
	if len(res.Constraints) != 0 || res.ClassesAnalyzed != 0 {
		t.Errorf("empty store inferred %+v", res)
	}
	if cpl := res.GenerateCPL(); !strings.Contains(cpl, "0 constraints") {
		t.Errorf("header wrong:\n%s", cpl)
	}
}

func TestSingletonClass(t *testing.T) {
	st := config.NewStore()
	st.Add(&config.Instance{Key: config.K("Solo"), Value: "42"})
	res := Infer(st, Defaults())
	ks := kinds(res.PerClass["Solo"])
	if !ks[KindType] || !ks[KindNonempty] {
		t.Errorf("singleton constraints = %+v", res.PerClass["Solo"])
	}
	// No consistency (below MinConsistency), no range, no uniqueness.
	if ks[KindConsistency] || ks[KindRange] || ks[KindUniqueness] {
		t.Errorf("singleton over-inferred: %+v", res.PerClass["Solo"])
	}
}

func TestAllEmptyClassIsConsistentOnly(t *testing.T) {
	st := config.NewStore()
	addClass(st, "F.Unset", 20, func(int) string { return "" })
	res := Infer(st, Defaults())
	ks := kinds(res.PerClass["F.Unset"])
	if !ks[KindConsistency] {
		t.Error("uniformly-unset class should be consistent")
	}
	if ks[KindType] || ks[KindNonempty] {
		t.Errorf("unset class over-inferred: %+v", res.PerClass["F.Unset"])
	}
}

func TestEnumBoundaryMaxVals(t *testing.T) {
	opts := Defaults()
	opts.MaxEnumVals = 3
	st := config.NewStore()
	addClass(st, "T.K3", 60, func(i int) string { return fmt.Sprintf("v%d", i%3) })
	addClass(st, "T.K4", 60, func(i int) string { return fmt.Sprintf("v%d", i%4) })
	res := Infer(st, opts)
	if !kinds(res.PerClass["T.K3"])[KindEnum] {
		t.Error("3-value set within MaxEnumVals should infer enum")
	}
	if kinds(res.PerClass["T.K4"])[KindEnum] {
		t.Error("4-value set beyond MaxEnumVals must not infer enum")
	}
}

func TestEnumQuoteEscaping(t *testing.T) {
	st := config.NewStore()
	addClass(st, "T.Q", 60, func(i int) string { return []string{"it's", "quote'd"}[i%2] })
	res := Infer(st, Defaults())
	src := res.GenerateCPL()
	if _, err := compiler.Compile(src); err != nil {
		t.Fatalf("generated CPL with quoted members does not compile: %v\n%s", err, src)
	}
}

func TestRangeFloats(t *testing.T) {
	st := config.NewStore()
	addClass(st, "F.Ratio", 30, func(i int) string { return fmt.Sprintf("%.1f", 0.5+float64(i%5)/10) })
	res := Infer(st, Defaults())
	var rangeCPL string
	for _, c := range res.PerClass["F.Ratio"] {
		if c.Kind == KindRange {
			rangeCPL = c.CPL
		}
	}
	if rangeCPL != "[0.5, 0.9]" {
		t.Errorf("float range = %q", rangeCPL)
	}
}

func TestVerboseCPLCompilesAndFolds(t *testing.T) {
	st := config.NewStore()
	addClass(st, "Node.Port", 50, func(i int) string { return fmt.Sprintf("%d", 8000+i) })
	addClass(st, "Node.Flag", 50, func(int) string { return "true" })
	res := Infer(st, Defaults())
	verbose := res.GenerateVerboseCPL()
	compact := res.GenerateCPL()
	if strings.Count(verbose, "\n") <= strings.Count(compact, "\n") {
		t.Error("verbose form should have more statements")
	}
	vprog, err := compiler.Compile(verbose)
	if err != nil {
		t.Fatalf("verbose CPL does not compile: %v", err)
	}
	cprog, err := compiler.Compile(compact)
	if err != nil {
		t.Fatalf("compact CPL does not compile: %v", err)
	}
	// The optimizer folds the verbose form down to the compact shape.
	if len(vprog.Specs) != len(cprog.Specs) {
		t.Errorf("optimized verbose = %d specs, compact = %d", len(vprog.Specs), len(cprog.Specs))
	}
}

func TestInferTimeRecorded(t *testing.T) {
	st := config.NewStore()
	addClass(st, "A.B", 30, func(i int) string { return fmt.Sprintf("%d", i) })
	res := Infer(st, Defaults())
	if res.InferTime <= 0 {
		t.Error("InferTime not recorded")
	}
	if res.InstancesAnalyzed != 30 || res.ClassesAnalyzed != 1 {
		t.Errorf("counters = %d/%d", res.ClassesAnalyzed, res.InstancesAnalyzed)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindType: "Type", KindNonempty: "Nonempty", KindRange: "Range",
		KindEnum: "Enum", KindEquality: "Equality", KindConsistency: "Consistency",
		KindUniqueness: "Uniqueness",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}

// Idempotence: inferring twice over the same store yields the same
// constraints in the same order.
func TestInferenceDeterministic(t *testing.T) {
	st := config.NewStore()
	addClass(st, "Node.Port", 40, func(i int) string { return fmt.Sprintf("%d", 9000+i) })
	addClass(st, "Node.Secret", 25, func(int) string { return "0123456789abcdef" })
	addClass(st, "Peer.Secret", 25, func(int) string { return "0123456789abcdef" })
	a := Infer(st, Defaults()).GenerateCPL()
	b := Infer(st, Defaults()).GenerateCPL()
	if a != b {
		t.Error("inference nondeterministic")
	}
}
