package infer

import (
	"fmt"
	"math/rand"
	"testing"

	"confvalley/internal/config"
)

// parallelBenchStore builds a corpus with many classes so the per-class
// worker pool has real fan-out to chew on.
func parallelBenchStore(nClasses, perClass int) *config.Store {
	rng := rand.New(rand.NewSource(7))
	st := config.NewStore()
	for c := 0; c < nClasses; c++ {
		param := fmt.Sprintf("Param%d", c)
		for i := 0; i < perClass; i++ {
			var val string
			switch c % 4 {
			case 0:
				val = fmt.Sprintf("%d", 10+rng.Intn(40))
			case 1:
				val = fmt.Sprintf("10.0.%d.%d", c%200, 1+rng.Intn(250))
			case 2:
				val = []string{"true", "false"}[rng.Intn(2)]
			default:
				val = fmt.Sprintf("node-%d-%d", c, i)
			}
			st.Add(&config.Instance{
				Key: config.K(fmt.Sprintf("Cluster::n%d", i%8),
					fmt.Sprintf("Group%d", c%16), param),
				Value: val,
			})
		}
	}
	return st
}

// The worker pool must not change the mined output: any worker count
// produces the same constraints in the same order as the sequential
// loop, down to the rendered CPL.
func TestInferParallelDeterministic(t *testing.T) {
	st := parallelBenchStore(60, 25)
	base := Defaults()
	base.Workers = 1
	want := Infer(st, base)
	wantCPL := want.GenerateCPL()
	for _, workers := range []int{2, 4, 8, 16} {
		opts := Defaults()
		opts.Workers = workers
		got := Infer(st, opts)
		if len(got.Constraints) != len(want.Constraints) {
			t.Fatalf("workers=%d: %d constraints, sequential mined %d",
				workers, len(got.Constraints), len(want.Constraints))
		}
		for i := range want.Constraints {
			w, g := want.Constraints[i], got.Constraints[i]
			if w.Kind != g.Kind || w.Class != g.Class || w.CPL != g.CPL {
				t.Fatalf("workers=%d: constraint %d differs: %+v vs %+v", workers, i, g, w)
			}
		}
		if cpl := got.GenerateCPL(); cpl != wantCPL {
			t.Errorf("workers=%d: generated CPL differs from sequential output", workers)
		}
	}
}

// BenchmarkInferWorkers shows the per-class pool's scaling. On a
// single-hardware-thread host all worker counts degenerate to roughly
// sequential throughput; the interesting numbers come from multi-core
// machines.
func BenchmarkInferWorkers(b *testing.B) {
	st := parallelBenchStore(120, 60)
	st.Snapshot() // seal once so the benchmark measures mining, not sealing
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := Defaults()
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Infer(st, opts)
			}
		})
	}
}
