// Package infer implements ConfValley's automatic specification inference
// engine (§4.5 of the paper). It mines validation constraints from
// known-good configuration data using the black-box approach: a
// configuration class with many instances carries enough evidence to infer
// its data type, nonemptiness, value range, enumeration membership,
// uniqueness, consistency, and cross-parameter equality.
//
// Noise tolerance follows the paper: types are joined through the type
// lattice (mixed int and list-of-int infer list-of-int), an enumeration is
// inferred only when ln(#values) ≥ #distinct ∧ #distinct ≤ MaxEnumVals,
// and equality clustering ignores values shorter than 6 characters and
// classes with fewer than 20 instances to avoid over-clustering.
package infer

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"confvalley/internal/config"
	"confvalley/internal/vtype"
)

// Kind classifies an inferred constraint (the Table 5 categories).
type Kind int

// Constraint kinds. Enum is reported under Range in Table 5 style
// summaries ("value range" covers both interval and membership).
const (
	KindType Kind = iota
	KindNonempty
	KindRange
	KindEnum
	KindEquality
	KindConsistency
	KindUniqueness
)

// String names the kind as in Table 5.
func (k Kind) String() string {
	switch k {
	case KindType:
		return "Type"
	case KindNonempty:
		return "Nonempty"
	case KindRange:
		return "Range"
	case KindEnum:
		return "Enum"
	case KindEquality:
		return "Equality"
	case KindConsistency:
		return "Consistency"
	case KindUniqueness:
		return "Uniqueness"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Options tune the inference heuristics; Defaults() reproduces the
// paper's settings.
type Options struct {
	// MaxEnumVals caps the distinct-value set size for enumerations.
	MaxEnumVals int
	// TypeThreshold is the fraction of samples that must conform to the
	// joined candidate type.
	TypeThreshold float64
	// MinRangeSamples is the minimum instance count to infer a numeric
	// range.
	MinRangeSamples int
	// MinEqualLen ignores values shorter than this in equality
	// clustering (paper: 6).
	MinEqualLen int
	// MinEqualInstances ignores classes with fewer instances in equality
	// clustering (paper: 20).
	MinEqualInstances int
	// MinConsistency is the minimum instance count to infer consistency.
	MinConsistency int
	// MinUniqueness is the minimum instance count to infer uniqueness.
	MinUniqueness int
	// Workers bounds the per-class inference worker pool; 0 uses
	// runtime.GOMAXPROCS(0). The output is deterministic regardless:
	// per-class results land in a slice indexed by class position and
	// merge in class (load) order.
	Workers int
}

// Defaults returns the paper's heuristic settings.
func Defaults() Options {
	return Options{
		MaxEnumVals:       10,
		TypeThreshold:     0.95,
		MinRangeSamples:   10,
		MinEqualLen:       6,
		MinEqualInstances: 20,
		MinConsistency:    3,
		MinUniqueness:     10,
	}
}

// Constraint is one inferred specification.
type Constraint struct {
	Kind  Kind
	Class string   // class path ("Fabric.Controller.Timeout")
	Peers []string // equality: the other classes in the cluster
	CPL   string   // the predicate fragment ("int", "[5, 15]", ...)
}

// Result holds the inference output for one corpus.
type Result struct {
	Constraints []Constraint
	// PerClass maps class path to its constraints (excluding equality,
	// which spans classes).
	PerClass map[string][]Constraint
	// ClassesAnalyzed and InstancesAnalyzed describe the input.
	ClassesAnalyzed   int
	InstancesAnalyzed int
	// InferTime is the mining time, excluding source parsing (Table 9's
	// breakdown).
	InferTime time.Duration
}

// CountByKind tallies constraints per Table 5 category. Enum counts under
// Range, as the paper folds membership into "value range".
func (r *Result) CountByKind() map[string]int {
	out := map[string]int{}
	for _, c := range r.Constraints {
		k := c.Kind
		if k == KindEnum {
			k = KindRange
		}
		out[k.String()]++
	}
	return out
}

// Histogram buckets classes by their number of inferred constraints
// (Figure 5). The returned slice index is the constraint count; the last
// bucket aggregates counts beyond its index.
func (r *Result) Histogram(maxBucket int) []int {
	buckets := make([]int, maxBucket+1)
	counts := make(map[string]int, r.ClassesAnalyzed)
	for _, c := range r.Constraints {
		if c.Kind == KindEquality {
			counts[c.Class]++
			for _, p := range c.Peers {
				counts[p]++
			}
			continue
		}
		counts[c.Class]++
	}
	zero := r.ClassesAnalyzed - len(counts)
	if zero > 0 {
		buckets[0] = zero
	}
	for _, n := range counts {
		if n > maxBucket {
			n = maxBucket
		}
		buckets[n]++
	}
	return buckets
}

// Infer mines constraints from every class in the store.
func Infer(st *config.Store, opts Options) *Result {
	start := time.Now()
	res := &Result{PerClass: make(map[string][]Constraint)}
	res.ClassesAnalyzed = len(st.Classes())
	res.InstancesAnalyzed = st.Len()

	// Per-class constraints, plus bookkeeping for equality clustering.
	// Each class is independent, so the per-class mining fans out over a
	// bounded worker pool; results land in a slice indexed by class
	// position and merge below in class (load) order, so the output is
	// byte-identical to the sequential loop no matter the worker count
	// or scheduling.
	type classFact struct {
		class      string
		consistent bool
		soleValue  string
		n          int
	}
	type classOut struct {
		cs   []Constraint
		fact classFact
	}
	classes := st.Classes()
	outs := make([]classOut, len(classes))
	mine := func(i int) {
		class := classes[i]
		ins := st.ClassInstances(class)
		values := make([]string, len(ins))
		for j, in := range ins {
			values[j] = in.Value
		}
		set := distinct(values)
		outs[i] = classOut{
			cs: inferClass(class, values, opts),
			fact: classFact{
				class:      class,
				consistent: len(set) == 1,
				soleValue:  values[0],
				n:          len(values),
			},
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(classes) {
		workers = len(classes)
	}
	if workers <= 1 {
		for i := range classes {
			mine(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(classes) {
						return
					}
					mine(i)
				}
			}()
		}
		wg.Wait()
	}
	facts := make([]classFact, 0, len(classes))
	for i := range outs {
		class := classes[i]
		for _, c := range outs[i].cs {
			res.Constraints = append(res.Constraints, c)
			res.PerClass[class] = append(res.PerClass[class], c)
		}
		facts = append(facts, outs[i].fact)
	}

	// Equality among parameters: cluster consistent classes by value.
	clusters := make(map[string][]string)
	for _, f := range facts {
		if !f.consistent || len(f.soleValue) < opts.MinEqualLen || f.n < opts.MinEqualInstances {
			continue
		}
		clusters[f.soleValue] = append(clusters[f.soleValue], f.class)
	}
	clusterVals := make([]string, 0, len(clusters))
	for v := range clusters {
		clusterVals = append(clusterVals, v)
	}
	sort.Strings(clusterVals)
	for _, v := range clusterVals {
		classes := clusters[v]
		if len(classes) < 2 {
			continue
		}
		sort.Strings(classes)
		// One chain of equalities per cluster: A == B, B == C, ...
		for i := 0; i+1 < len(classes); i++ {
			res.Constraints = append(res.Constraints, Constraint{
				Kind:  KindEquality,
				Class: classes[i],
				Peers: []string{classes[i+1]},
				CPL:   "== $" + classes[i+1],
			})
		}
	}
	res.InferTime = time.Since(start)
	return res
}

// inferClass mines the per-class constraints from its instance values.
// Heavy analyses (type detection, numeric parsing) run over the distinct
// values only: a Type B class has ~14,000 instances but a handful of
// distinct values, and inference must stay cheap relative to parsing
// (Table 9 of the paper).
func inferClass(class string, values []string, opts Options) []Constraint {
	var out []Constraint
	n := len(values)
	if n == 0 {
		return nil
	}
	set, counts := distinctWithCounts(values)

	// Data type, with lattice join and noise tolerance.
	inferredType, hasType := inferType(set, counts, opts)
	if hasType {
		out = append(out, Constraint{Kind: KindType, Class: class, CPL: inferredType.String()})
	}

	// Nonemptiness.
	nonempty := true
	for _, v := range set {
		if strings.TrimSpace(v) == "" {
			nonempty = false
			break
		}
	}
	if nonempty {
		out = append(out, Constraint{Kind: KindNonempty, Class: class, CPL: "nonempty"})
	}

	isBool := hasType && inferredType == vtype.Scalar(vtype.KindBool)

	// Consistency: a parameter that never varies.
	if len(set) == 1 && n >= opts.MinConsistency {
		out = append(out, Constraint{Kind: KindConsistency, Class: class, CPL: "consistent"})
	}

	// Enumeration: ln(values) ≥ |set| ∧ |set| ≤ MAX (§4.5), skipping
	// booleans whose two-value "enumeration" is vacuous.
	enumInferred := false
	if len(set) >= 2 && len(set) <= opts.MaxEnumVals && !isBool &&
		math.Log(float64(n)) >= float64(len(set)) {
		members := make([]string, 0, len(set))
		for _, v := range set {
			members = append(members, "'"+strings.ReplaceAll(v, "'", "\\'")+"'")
		}
		out = append(out, Constraint{Kind: KindEnum, Class: class, CPL: "{" + strings.Join(members, ", ") + "}"})
		enumInferred = true
	}

	// Numeric value range, when enumeration did not already pin the
	// values down.
	if !enumInferred && hasType && isNumericType(inferredType) && n >= opts.MinRangeSamples && len(set) >= 2 {
		lo, hi, ok := numericRange(set)
		if ok {
			out = append(out, Constraint{Kind: KindRange, Class: class, CPL: fmt.Sprintf("[%s, %s]", lo, hi)})
		}
	}

	// Uniqueness: every instance differs.
	if len(set) == n && n >= opts.MinUniqueness && !isBool {
		out = append(out, Constraint{Kind: KindUniqueness, Class: class, CPL: "unique"})
	}
	return out
}

// inferType joins the detected types of the set (non-empty) samples and
// applies the noise threshold: the joined type must admit at least
// TypeThreshold of them. Empty samples are "unset", not type evidence —
// presence is the nonempty constraint's concern. Plain string is never
// reported (§6.3 counts only types other than the default string).
// The inputs are the class's distinct values with their occurrence counts,
// so detection cost scales with value diversity rather than instance count.
func inferType(set []string, counts map[string]int, opts Options) (vtype.Type, bool) {
	cand := vtype.Scalar(vtype.KindInvalid)
	sawNonString := false
	totalSet := 0
	for _, v := range set {
		if strings.TrimSpace(v) == "" {
			continue
		}
		totalSet += counts[v]
		t := vtype.Detect(v)
		if !t.IsString() {
			if !sawNonString {
				cand, sawNonString = t, true
			} else {
				cand = vtype.Join(cand, t)
			}
		}
	}
	if !sawNonString || totalSet == 0 || cand.IsString() {
		return vtype.TString, false
	}
	conform := 0
	for _, v := range set {
		if strings.TrimSpace(v) == "" {
			continue
		}
		if vtype.Conforms(v, cand) {
			conform += counts[v]
		}
	}
	if float64(conform) < opts.TypeThreshold*float64(totalSet) {
		return vtype.TString, false
	}
	return cand, true
}

func isNumericType(t vtype.Type) bool {
	switch t.Kind {
	case vtype.KindInt, vtype.KindFloat, vtype.KindPort:
		return true
	}
	return false
}

// numericRange computes [min, max] over samples that parse as numbers,
// rendered in the style of the inputs (integers stay integers).
func numericRange(values []string) (lo, hi string, ok bool) {
	first := true
	var min, max float64
	allInt := true
	for _, v := range values {
		f, isNum := vtype.ParseFloat(v)
		if !isNum {
			continue // noise-tolerant: skip unparsable samples
		}
		if _, isInt := vtype.ParseInt(v); !isInt {
			allInt = false
		}
		if first {
			min, max, first = f, f, false
			continue
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if first {
		return "", "", false
	}
	format := func(f float64) string {
		if allInt {
			return fmt.Sprintf("%d", int64(f))
		}
		return fmt.Sprintf("%g", f)
	}
	return format(min), format(max), true
}

// distinct returns the distinct values in first-seen order.
func distinct(values []string) []string {
	out, _ := distinctWithCounts(values)
	return out
}

// distinctWithCounts returns the distinct values in first-seen order with
// their occurrence counts.
func distinctWithCounts(values []string) ([]string, map[string]int) {
	counts := make(map[string]int, 16)
	var out []string
	for _, v := range values {
		if counts[v] == 0 {
			out = append(out, v)
		}
		counts[v]++
	}
	return out, counts
}

// GenerateVerboseCPL renders one statement per constraint, the shape
// redundant hand-written validation code takes (one check added per
// incident, never consolidated). The compiler's Figure 4 rewrites fold
// it back into the compact form GenerateCPL produces directly; the
// Figure 4 ablation benchmark measures that difference.
func (r *Result) GenerateVerboseCPL() string {
	var b strings.Builder
	classes := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		for _, c := range r.PerClass[class] {
			fmt.Fprintf(&b, "$%s -> %s\n", class, c.CPL)
		}
	}
	for _, c := range r.Constraints {
		if c.Kind == KindEquality {
			fmt.Fprintf(&b, "$%s %s\n", c.Class, c.CPL)
		}
	}
	return b.String()
}

// GenerateCPL renders the inferred constraints as a CPL specification
// file: one statement per class combining its predicate fragments, plus
// one statement per equality.
func (r *Result) GenerateCPL() string {
	var b strings.Builder
	b.WriteString("// Specifications inferred by ConfValley's inference engine.\n")
	fmt.Fprintf(&b, "// %d classes, %d instances analyzed; %d constraints.\n\n",
		r.ClassesAnalyzed, r.InstancesAnalyzed, len(r.Constraints))
	classes := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := r.PerClass[class]
		frags := make([]string, 0, len(cs))
		for _, c := range cs {
			frags = append(frags, c.CPL)
		}
		fmt.Fprintf(&b, "$%s -> %s\n", class, strings.Join(frags, " & "))
	}
	for _, c := range r.Constraints {
		if c.Kind == KindEquality {
			fmt.Fprintf(&b, "$%s %s\n", c.Class, c.CPL)
		}
	}
	return b.String()
}
