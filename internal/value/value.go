// Package value defines the runtime values that flow through CPL
// evaluation: configuration instance values entering a pipeline, the lists
// produced by transformations like split, and the tuples produced by the
// [a, b] constructor.
package value

import (
	"strings"

	"confvalley/internal/config"
	"confvalley/internal/vtype"
)

// V is a runtime value. Exactly one representation is active: a scalar
// (List == nil) carries Raw; a list or tuple carries List.
type V struct {
	Raw  string
	List []V // non-nil for list/tuple values

	// Inst is the configuration instance this value was derived from,
	// carried through transformations for error reporting. Nil for purely
	// synthetic values (literals, reduce results).
	Inst *config.Instance
}

// Scalar wraps a raw string.
func Scalar(raw string) V { return V{Raw: raw} }

// FromInstance wraps a configuration instance's value.
func FromInstance(in *config.Instance) V { return V{Raw: in.Value, Inst: in} }

// ListOf builds a list value, propagating the instance from the first
// element that has one.
func ListOf(elems []V) V {
	v := V{List: elems}
	if v.List == nil {
		v.List = []V{}
	}
	for _, e := range elems {
		if e.Inst != nil {
			v.Inst = e.Inst
			break
		}
	}
	return v
}

// IsList reports whether v is a list or tuple.
func (v V) IsList() bool { return v.List != nil }

// String renders the value for error messages.
func (v V) String() string {
	if !v.IsList() {
		return v.Raw
	}
	parts := make([]string, len(v.List))
	for i, e := range v.List {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Equal compares two values structurally; scalars compare numerically when
// both sides are numeric, so "5" equals "5.0" and "05".
func Equal(a, b V) bool {
	if a.IsList() != b.IsList() {
		return false
	}
	if !a.IsList() {
		c, typed := vtype.CompareValues(a.Raw, b.Raw)
		if typed {
			return c == 0
		}
		return a.Raw == b.Raw
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !Equal(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

// Compare orders two scalar values using the typed comparison rules
// (numeric, IP, version, size, duration, falling back to string order).
// Lists compare lexicographically element-wise.
func Compare(a, b V) int {
	if a.IsList() && b.IsList() {
		for i := 0; i < len(a.List) && i < len(b.List); i++ {
			if c := Compare(a.List[i], b.List[i]); c != 0 {
				return c
			}
		}
		return len(a.List) - len(b.List)
	}
	c, _ := vtype.CompareValues(a.Raw, b.Raw)
	return c
}

// Key returns a canonical string usable as a map key for uniqueness and
// consistency checks; numerically equal scalars may still produce distinct
// keys ("5" vs "05"), which matches how the paper treats configuration
// values as strings for consistency purposes.
func (v V) Key() string {
	if !v.IsList() {
		return "s:" + v.Raw
	}
	parts := make([]string, len(v.List))
	for i, e := range v.List {
		parts[i] = e.Key()
	}
	return "l:[" + strings.Join(parts, "\x00") + "]"
}

// Provenance describes where the value came from, for error messages.
func (v V) Provenance() string {
	if v.Inst == nil {
		return "(derived value)"
	}
	s := v.Inst.Key.String()
	if v.Inst.Source != "" {
		s += " (" + v.Inst.Source + ")"
	}
	return s
}
