package value

import (
	"testing"

	"confvalley/internal/config"
)

func TestScalarAndList(t *testing.T) {
	s := Scalar("x")
	if s.IsList() || s.Raw != "x" {
		t.Errorf("Scalar = %+v", s)
	}
	l := ListOf([]V{Scalar("a"), Scalar("b")})
	if !l.IsList() || len(l.List) != 2 {
		t.Errorf("ListOf = %+v", l)
	}
	if l.String() != "[a, b]" {
		t.Errorf("String = %q", l.String())
	}
	empty := ListOf(nil)
	if !empty.IsList() || len(empty.List) != 0 {
		t.Errorf("empty list = %+v", empty)
	}
}

func TestEqualNumericAware(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"5", "5", true},
		{"5", "5.0", true},
		{"5", "05", true},
		{"5", "6", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"10.0.0.1", "10.0.0.1", true},
	}
	for _, c := range cases {
		if got := Equal(Scalar(c.a), Scalar(c.b)); got != c.want {
			t.Errorf("Equal(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if Equal(Scalar("x"), ListOf([]V{Scalar("x")})) {
		t.Error("scalar != singleton list")
	}
	if !Equal(ListOf([]V{Scalar("1"), Scalar("2")}), ListOf([]V{Scalar("1"), Scalar("2")})) {
		t.Error("equal lists should be Equal")
	}
	if Equal(ListOf([]V{Scalar("1")}), ListOf([]V{Scalar("1"), Scalar("2")})) {
		t.Error("lists of different lengths differ")
	}
}

func TestCompare(t *testing.T) {
	if Compare(Scalar("2"), Scalar("10")) >= 0 {
		t.Error("numeric compare failed")
	}
	if Compare(Scalar("10.0.0.2"), Scalar("10.0.0.10")) >= 0 {
		t.Error("IP compare failed")
	}
	a := ListOf([]V{Scalar("1"), Scalar("2")})
	b := ListOf([]V{Scalar("1"), Scalar("3")})
	if Compare(a, b) >= 0 {
		t.Error("list compare failed")
	}
	if Compare(a, ListOf([]V{Scalar("1")})) <= 0 {
		t.Error("longer list should compare greater when prefix equal")
	}
}

func TestKeyDistinguishesShapes(t *testing.T) {
	if Scalar("a").Key() == ListOf([]V{Scalar("a")}).Key() {
		t.Error("scalar and list keys should differ")
	}
	if ListOf([]V{Scalar("a"), Scalar("b")}).Key() == ListOf([]V{Scalar("a,b")}).Key() {
		t.Error("nested structure must not collide")
	}
}

func TestProvenance(t *testing.T) {
	in := &config.Instance{Key: config.K("Fabric", "Timeout"), Value: "30", Source: "a.ini"}
	v := FromInstance(in)
	if v.Provenance() != "Fabric.Timeout (a.ini)" {
		t.Errorf("Provenance = %q", v.Provenance())
	}
	if Scalar("x").Provenance() != "(derived value)" {
		t.Errorf("derived provenance = %q", Scalar("x").Provenance())
	}
	// ListOf propagates instance.
	l := ListOf([]V{Scalar("a"), v})
	if l.Inst != in {
		t.Error("ListOf should propagate the first instance")
	}
}
