package parser

import (
	"math/rand"
	"strings"
	"testing"

	"confvalley/internal/cpl/ast"
)

// Robustness: the parser must never panic, whatever the input.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{
		"$", "X", "->", "int", "&", "|", "~", "[", "]", "{", "}", "(", ")",
		"compartment", "namespace", "if", "else", "let", ":=", "load",
		"'s'", "5", ",", ".", "::", "exists", "all", "one", "@", "m",
		"split", "at", "#", "==", "<=", "message",
	}
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(14)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// Property: rendering a parsed statement and re-parsing it reproduces the
// same rendering (render∘parse is a fixpoint) for a randomized family of
// generated specifications.
func TestPropRenderParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	preds := []string{
		"int", "ip & nonempty", "bool | int", "~nonempty",
		"[1, 99]", "{'a', 'b', 'c'}", "match('*.vhd')", "unique & consistent",
		"== 'x'", "<= $Other.Bound", "if (nonempty) int else bool",
		"exists [1, 5]", "list(ip)", "startswith('https://')",
	}
	doms := []string{
		"$A", "$A.B", "$A::i1.B", "$A[2].B", "$*.Key", "$Pre*",
		"$A -> split(':') -> at(0)", "count($A.B)", "$A + $B",
		"#[Scope] $A.B#",
	}
	for trial := 0; trial < 300; trial++ {
		src := doms[rng.Intn(len(doms))] + " -> " + preds[rng.Intn(len(preds))]
		if rng.Intn(4) == 0 {
			src = "exists " + src
		}
		if rng.Intn(5) == 0 {
			src += " message 'custom'"
		}
		stmts, err := Parse(src)
		if err != nil {
			t.Fatalf("generated spec %q does not parse: %v", src, err)
		}
		r1 := ast.Render(stmts[0])
		stmts2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendered spec %q does not re-parse: %v (from %q)", r1, err, src)
		}
		if r2 := ast.Render(stmts2[0]); r2 != r1 {
			t.Fatalf("render not a fixpoint:\n  src: %s\n  r1:  %s\n  r2:  %s", src, r1, r2)
		}
	}
}

// Property: parsing is deterministic.
func TestParserDeterministic(t *testing.T) {
	src := `
compartment Cluster {
  $ProxyIP -> [$StartIP, $EndIP]
  $IPv6Prefix -> ~nonempty | cidr
}
exists $Role -> == 'controller'
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Parse(src)
	if len(a) != len(b) || ast.Render(a[0]) != ast.Render(b[0]) {
		t.Fatal("parser nondeterministic")
	}
}
