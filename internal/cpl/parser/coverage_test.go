package parser

import (
	"strings"
	"testing"

	"confvalley/internal/cpl/ast"
	"confvalley/internal/cpl/token"
)

func TestMessageClause(t *testing.T) {
	s := spec(t, "$X -> int message 'custom text'")
	if s.Message != "custom text" {
		t.Errorf("message = %q", s.Message)
	}
	// Continuation-line form.
	s = spec(t, "$X -> int\n  message 'on the next line'")
	if s.Message != "on the next line" {
		t.Errorf("message = %q", s.Message)
	}
	// The clause needs a string.
	if _, err := Parse("$X -> int message 42"); err == nil {
		t.Error("non-string message should error")
	}
}

func TestNameVariableInQid(t *testing.T) {
	s := spec(t, "$Fabric.$ParamName -> nonempty")
	ref := s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[1].NameVar != "ParamName" {
		t.Errorf("pattern = %+v", ref.Pattern)
	}
	if ast.Render(s) != "$Fabric.$ParamName -> nonempty" {
		t.Errorf("render = %q", ast.Render(s))
	}
}

func TestNestedArgumentPipelines(t *testing.T) {
	s := spec(t, "union($Pool.Members -> split(';') -> trim()) -> len() -> >= 1")
	// Shape: Pipe{Src: Pipe{Src: Pipe{Ref, [split, trim]}, [union]}, [len]}.
	outer := s.Domain.(*ast.Pipe)
	if len(outer.Steps) != 1 || outer.Steps[0].T.Name != "len" {
		t.Fatalf("outer steps = %+v", outer.Steps)
	}
	unionPipe, ok := outer.Src.(*ast.Pipe)
	if !ok || len(unionPipe.Steps) != 1 || unionPipe.Steps[0].T.Name != "union" {
		t.Fatalf("union pipe = %#v", outer.Src)
	}
	inner, ok := unionPipe.Src.(*ast.Pipe)
	if !ok || len(inner.Steps) != 2 || inner.Steps[0].T.Name != "split" || inner.Steps[1].T.Name != "trim" {
		t.Fatalf("inner pipe = %#v", unionPipe.Src)
	}
}

func TestQuotedInstanceAndIndexVar(t *testing.T) {
	s := spec(t, "$Group::'East US 2'.Rack[$which].Key -> int")
	ref := s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Inst != "East US 2" {
		t.Errorf("quoted instance = %+v", ref.Pattern.Segs[0])
	}
	if ref.Pattern.Segs[1].IndexVar != "which" {
		t.Errorf("index var = %+v", ref.Pattern.Segs[1])
	}
}

func TestWildcardInstance(t *testing.T) {
	s := spec(t, "$Cloud::*west*.Key -> int")
	ref := s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Inst != "*west*" {
		t.Errorf("wildcard instance = %+v", ref.Pattern.Segs[0])
	}
}

func TestLoneStarInstance(t *testing.T) {
	s := spec(t, "$Cloud::*.Key -> int")
	ref := s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Inst != "*" {
		t.Errorf("star instance = %+v", ref.Pattern.Segs[0])
	}
}

func TestGuardedTupleStep(t *testing.T) {
	s := spec(t, "$X -> if (nonempty) [at(0), at(1)] -> exists [1, 9]")
	pipe := s.Domain.(*ast.Pipe)
	if pipe.Steps[0].Guard == nil || pipe.Steps[0].T.Name != "tuple" {
		t.Errorf("step = %+v", pipe.Steps[0])
	}
}

func TestParenthesizedDomain(t *testing.T) {
	s := spec(t, "($A) + $B -> [0, 10]")
	if _, ok := s.Domain.(*ast.BinaryDomain); !ok {
		t.Errorf("domain = %T", s.Domain)
	}
}

func TestNegativeNumberLiterals(t *testing.T) {
	s := spec(t, "$X -> [-10, -1]")
	rng := s.Pred.(*ast.Range)
	if rng.Lo.(*ast.Lit).Text != "-10" || rng.Hi.(*ast.Lit).Text != "-1" {
		t.Errorf("bounds = %v %v", rng.Lo, rng.Hi)
	}
	if _, err := Parse("$X -> [-x, 1]"); err == nil {
		t.Error("minus before non-number should error")
	}
}

func TestBareIdentifierEnumMembers(t *testing.T) {
	s := spec(t, "$Mode -> {fast, safe}")
	en := s.Pred.(*ast.Enum)
	if en.Elems[0].(*ast.Lit).Text != "fast" || en.Elems[0].(*ast.Lit).Kind != token.STRING {
		t.Errorf("bare member = %+v", en.Elems[0])
	}
}

func TestMoreParseErrors(t *testing.T) {
	for _, bad := range []string{
		"$X -> [1 2]",       // missing comma
		"$X -> {1, }",       // trailing comma
		"$X -> split(",      // unterminated args
		"$A.$ -> int",       // bad name var
		"compartment",       // missing scope
		"namespace 5 { }",   // numeric scope
		"$X[0].K -> int",    // zero index
		"$X[-1].K -> int",   // negative index
		"$X -> int message", // message without string
		"if $X -> int",      // missing parens
		"$X ->",             // dangling arrow
		"get",               // get without domain
		"policy p",          // policy without value
		"one",               // bare quantifier
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestErrorsMentionPosition(t *testing.T) {
	_, err := Parse("$X -> int\n$Y -> ???")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line 2 position: %v", err)
	}
}
