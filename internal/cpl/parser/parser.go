// Package parser implements the recursive-descent parser for CPL.
//
// The grammar follows Listing 4 of the paper, concretized as documented in
// DESIGN.md. The trickiest property of CPL syntax is that '->' both pipes
// a domain through transformations and connects the domain to its final
// predicate; the parser resolves each '->' by classifying what follows it
// (a transformation call continues the pipeline, anything else starts the
// predicate). Likewise '[a, b]' is a tuple-building transformation when
// another '->' follows and a range predicate when terminal.
package parser

import (
	"fmt"

	"confvalley/internal/config"
	"confvalley/internal/cpl/ast"
	"confvalley/internal/cpl/lexer"
	"confvalley/internal/cpl/token"
	"confvalley/internal/vtype"
)

// IsTransform decides whether a name refers to a transformation function;
// the compiler wires this to the live transform registry so plug-in
// transforms parse correctly. The default covers the built-ins.
var IsTransform = func(name string) bool { return builtinTransforms[name] }

var builtinTransforms = map[string]bool{
	"split": true, "at": true, "lower": true, "upper": true, "trim": true,
	"len": true, "count": true, "union": true, "sum": true, "min": true,
	"max": true, "abs": true, "replace": true, "basename": true,
	"foreach": true, "distinct": true, "first": true, "last": true,
}

// primitives are the niladic predicate primitives besides type names.
var primitives = map[string]bool{
	"nonempty": true, "unique": true, "consistent": true, "ordered": true,
	"reachable": true, "exists": true,
}

// Error is a parse error with source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cpl:%s: %s", e.Pos, e.Msg) }

// Parse parses a complete CPL source file into statements.
func Parse(src string) ([]ast.Stmt, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []ast.Stmt
	for {
		p.skipNewlines()
		if p.at(token.EOF) {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// ParsePredicate parses a standalone predicate expression, used by the
// inference engine's round-trip tests and the interactive console.
func ParsePredicate(src string) (ast.Pred, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pred, err := p.predicate()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if !p.at(token.EOF) {
		return nil, p.errf("unexpected %s after predicate", p.cur())
	}
	return pred, nil
}

type parser struct {
	toks []token.Token
	i    int
}

func (p *parser) cur() token.Token     { return p.toks[p.i] }
func (p *parser) at(k token.Kind) bool { return p.toks[p.i].Kind == k }

func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if t.Kind != token.EOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipNewlines() {
	for p.at(token.NEWLINE) {
		p.i++
	}
}

// peekPast returns the first token kind at or after index i that is not a
// newline.
func (p *parser) peekPastNewlines() token.Kind {
	return p.peekPastNewlinesTok().Kind
}

func (p *parser) peekPastNewlinesTok() token.Token {
	j := p.i
	for j < len(p.toks) && p.toks[j].Kind == token.NEWLINE {
		j++
	}
	return p.toks[j]
}

// acceptContinuation consumes newlines if the next meaningful token is k,
// then consumes k. It lets pipelines and boolean chains span lines.
func (p *parser) acceptContinuation(k token.Kind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	if p.at(token.NEWLINE) && p.peekPastNewlines() == k {
		p.skipNewlines()
		p.i++
		return true
	}
	return false
}

// ---- Statements ----

func (p *parser) statement() (ast.Stmt, error) {
	switch p.cur().Kind {
	case token.LOAD:
		return p.loadStmt()
	case token.INCLUDE:
		pos := p.next().Pos
		path, err := p.expect(token.STRING)
		if err != nil {
			return nil, err
		}
		st := &ast.IncludeStmt{Path: path.Text}
		st.P = pos
		return st, p.endStatement(pos)
	case token.LET:
		return p.letStmt()
	case token.POLICY:
		pos := p.next().Pos
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		val, err := p.expect(token.STRING)
		if err != nil {
			return nil, err
		}
		st := &ast.PolicyStmt{Name: name.Text, Value: val.Text}
		st.P = pos
		return st, p.endStatement(pos)
	case token.GET:
		pos := p.next().Pos
		d, err := p.domain()
		if err != nil {
			return nil, err
		}
		st := &ast.GetStmt{Domain: d}
		st.P = pos
		return st, p.endStatement(pos)
	case token.NAMESPACE, token.COMPARTMENT:
		return p.blockStmt()
	case token.IF:
		return p.ifStmt()
	default:
		return p.specStmt()
	}
}

// endStatement requires a statement boundary (newline, EOF or closing
// brace) after a completed statement.
func (p *parser) endStatement(pos token.Pos) error {
	switch p.cur().Kind {
	case token.NEWLINE, token.EOF, token.RBRACE:
		return nil
	}
	return p.errf("unexpected %s after statement starting at %s", p.cur(), pos)
}

func (p *parser) loadStmt() (ast.Stmt, error) {
	pos := p.next().Pos
	drv, err := p.expect(token.STRING)
	if err != nil {
		return nil, err
	}
	src, err := p.expect(token.STRING)
	if err != nil {
		return nil, err
	}
	st := &ast.LoadStmt{Driver: drv.Text, Source: src.Text}
	st.P = pos
	if p.at(token.AS) {
		p.next()
		pat, err := p.qid()
		if err != nil {
			return nil, err
		}
		st.Scope = pat.String()
	}
	return st, p.endStatement(pos)
}

func (p *parser) letStmt() (ast.Stmt, error) {
	pos := p.next().Pos
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.ASSIGN); err != nil {
		return nil, err
	}
	pred, err := p.predicate()
	if err != nil {
		return nil, err
	}
	st := &ast.LetStmt{Name: name.Text, Pred: pred}
	st.P = pos
	return st, p.endStatement(pos)
}

func (p *parser) blockStmt() (ast.Stmt, error) {
	kw := p.next()
	kind := ast.BlockNamespace
	if kw.Kind == token.COMPARTMENT {
		kind = ast.BlockCompartment
	}
	scope, err := p.qid()
	if err != nil {
		return nil, err
	}
	body, err := p.blockBody()
	if err != nil {
		return nil, err
	}
	st := &ast.BlockStmt{Kind: kind, Scope: scope, Body: body}
	st.P = kw.Pos
	return st, nil
}

// blockBody parses "{ statements }" or a single statement.
func (p *parser) blockBody() ([]ast.Stmt, error) {
	if p.peekPastNewlines() == token.LBRACE {
		p.skipNewlines()
		p.next() // {
		var body []ast.Stmt
		for {
			p.skipNewlines()
			if p.at(token.RBRACE) {
				p.next()
				return body, nil
			}
			if p.at(token.EOF) {
				return nil, p.errf("unexpected EOF inside block")
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		}
	}
	p.skipNewlines()
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []ast.Stmt{s}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	ifPos := p.cur().Pos
	p.next() // if
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.condSpec()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	thenBody, err := p.blockBody()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Cond: cond, Then: thenBody}
	st.P = ifPos
	if p.at(token.ELSE) || (p.at(token.NEWLINE) && p.peekPastNewlines() == token.ELSE) {
		p.skipNewlines()
		p.next() // else
		elseBody, err := p.blockBody()
		if err != nil {
			return nil, err
		}
		st.Else = elseBody
	}
	return st, nil
}

// condSpec parses the inside of an if(...) condition: a quantified
// domain/predicate statement.
func (p *parser) condSpec() (*ast.SpecStmt, error) {
	st, err := p.specCore()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) specStmt() (ast.Stmt, error) {
	st, err := p.specCore()
	if err != nil {
		return nil, err
	}
	st.Text = ast.Render(st)
	return st, p.endStatement(st.Pos())
}

// specCore parses [quantifier] domain (-> predicate | relop expr).
func (p *parser) specCore() (*ast.SpecStmt, error) {
	startPos := p.cur().Pos
	quant := ast.QuantAll
	if p.cur().Kind.IsQuantifier() {
		switch p.next().Kind {
		case token.EXISTS:
			quant = ast.QuantExists
		case token.ONE:
			quant = ast.QuantOne
		}
	}
	d, pred, err := p.domainThenPredicate()
	if err != nil {
		return nil, err
	}
	st := &ast.SpecStmt{Quant: quant, Domain: d, Pred: pred}
	st.P = startPos
	// Optional custom error message (§4.4): ... message 'text', possibly
	// on a continuation line.
	if msgTok := p.peekPastNewlinesTok(); msgTok.Kind == token.IDENT && msgTok.Text == "message" {
		p.skipNewlines()
		p.next()
		msg, err := p.expect(token.STRING)
		if err != nil {
			return nil, err
		}
		st.Message = msg.Text
	}
	st.Text = ast.Render(st)
	return st, nil
}

// domainThenPredicate parses a domain pipeline and its terminal predicate.
func (p *parser) domainThenPredicate() (ast.Domain, ast.Pred, error) {
	d, err := p.domain()
	if err != nil {
		return nil, nil, err
	}
	// Statement-level relation: $A <= $B.
	if p.cur().Kind.IsRelOp() {
		op := p.next().Kind
		rhs, err := p.exprArg()
		if err != nil {
			return nil, nil, err
		}
		return d, &ast.Rel{Op: op, Rhs: rhs}, nil
	}
	// Pipeline: consume "-> step" while steps are transforms; the first
	// non-transform element after an arrow is the predicate.
	var steps []*ast.Step
	for {
		if !p.acceptContinuation(token.ARROW) {
			return nil, nil, p.errf("expected '->' or relation after domain, found %s", p.cur())
		}
		if step, ok, err := p.tryStep(); err != nil {
			return nil, nil, err
		} else if ok {
			steps = append(steps, step)
			continue
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, nil, err
		}
		if len(steps) > 0 {
			d = &ast.Pipe{Src: d, Steps: steps}
		}
		return d, pred, nil
	}
}

// tryStep attempts to parse a pipeline transformation step at the current
// position. It returns ok=false (with no tokens consumed) when what
// follows is a predicate instead.
func (p *parser) tryStep() (*ast.Step, bool, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.IDENT:
		if IsTransform(p.cur().Text) && p.toks[p.i+1].Kind == token.LPAREN {
			t, err := p.transformCall()
			if err != nil {
				return nil, false, err
			}
			return &ast.Step{P: pos, T: t}, true, nil
		}
		return nil, false, nil
	case token.LBRACK:
		// Tuple transform if an arrow follows the matching bracket;
		// range predicate otherwise.
		if p.bracketIsTuple() {
			t, err := p.tupleTransform()
			if err != nil {
				return nil, false, err
			}
			return &ast.Step{P: pos, T: t}, true, nil
		}
		return nil, false, nil
	case token.IF:
		// Guarded transform: if (pred) transform. If the body is not a
		// transform this is a terminal IfPred, so backtrack.
		save := p.i
		p.next() // if
		if _, err := p.expect(token.LPAREN); err != nil {
			p.i = save
			return nil, false, nil
		}
		guard, err := p.predicate()
		if err != nil {
			p.i = save
			return nil, false, nil
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			p.i = save
			return nil, false, nil
		}
		if p.at(token.IDENT) && IsTransform(p.cur().Text) && p.toks[p.i+1].Kind == token.LPAREN {
			t, err := p.transformCall()
			if err != nil {
				return nil, false, err
			}
			return &ast.Step{P: pos, Guard: guard, T: t}, true, nil
		}
		if p.at(token.LBRACK) && p.bracketIsTuple() {
			t, err := p.tupleTransform()
			if err != nil {
				return nil, false, err
			}
			return &ast.Step{P: pos, Guard: guard, T: t}, true, nil
		}
		p.i = save
		return nil, false, nil
	}
	return nil, false, nil
}

// bracketIsTuple looks ahead from a '[' to its matching ']' and reports
// whether an arrow follows (tuple transform) or not (range predicate).
func (p *parser) bracketIsTuple() bool {
	depth := 0
	for j := p.i; j < len(p.toks); j++ {
		switch p.toks[j].Kind {
		case token.LBRACK:
			depth++
		case token.RBRACK:
			depth--
			if depth == 0 {
				for k := j + 1; k < len(p.toks); k++ {
					if p.toks[k].Kind == token.NEWLINE {
						continue
					}
					return p.toks[k].Kind == token.ARROW
				}
				return false
			}
		case token.EOF:
			return false
		}
	}
	return false
}

func (p *parser) transformCall() (*ast.Transform, error) {
	name := p.next() // IDENT, verified by caller
	t := &ast.Transform{P: name.Pos, Name: name.Text}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	if p.at(token.RPAREN) {
		p.next()
		return t, nil
	}
	for {
		arg, err := p.exprArg()
		if err != nil {
			return nil, err
		}
		t.Args = append(t.Args, arg)
		if p.at(token.COMMA) {
			p.next()
			continue
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return t, nil
	}
}

func (p *parser) tupleTransform() (*ast.Transform, error) {
	open := p.next() // [
	t := &ast.Transform{P: open.Pos, Name: "tuple"}
	for {
		arg, err := p.exprArg()
		if err != nil {
			return nil, err
		}
		t.Args = append(t.Args, arg)
		if p.at(token.COMMA) {
			p.next()
			continue
		}
		if _, err := p.expect(token.RBRACK); err != nil {
			return nil, err
		}
		return t, nil
	}
}

// ---- Domains ----

// domain parses a domain expression with arithmetic operators; pipeline
// steps are handled by domainThenPredicate because only there can the
// transform/predicate ambiguity be resolved.
func (p *parser) domain() (ast.Domain, error) {
	return p.domainAdd()
}

func (p *parser) domainAdd() (ast.Domain, error) {
	l, err := p.domainMul()
	if err != nil {
		return nil, err
	}
	for p.at(token.PLUS) || p.at(token.MINUS) {
		op := p.next().Kind
		r, err := p.domainMul()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryDomain{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) domainMul() (ast.Domain, error) {
	l, err := p.domainPrimary()
	if err != nil {
		return nil, err
	}
	for p.at(token.STAR) || p.at(token.SLASH) {
		// A '*' directly before '.' or '::' is a wildcard qid start of a
		// later statement, never multiplication at this point (we already
		// have a complete domain and '*' would begin a new statement); in
		// practice ambiguity does not arise because statements are
		// newline-separated.
		op := p.next().Kind
		r, err := p.domainPrimary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryDomain{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) domainPrimary() (ast.Domain, error) {
	switch p.cur().Kind {
	case token.DOLLAR:
		pos := p.next().Pos
		if p.at(token.IDENT) && p.cur().Text == "_" {
			p.next()
			pv := &ast.PipeVar{}
			setDomainPos(pv, pos)
			return pv, nil
		}
		pat, err := p.qid()
		if err != nil {
			return nil, err
		}
		r := &ast.Ref{Pattern: pat}
		setDomainPos(r, pos)
		return r, nil
	case token.HASH:
		pos := p.next().Pos
		if _, err := p.expect(token.LBRACK); err != nil {
			return nil, err
		}
		scope, err := p.qid()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBRACK); err != nil {
			return nil, err
		}
		inner, err := p.domain()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.HASH); err != nil {
			return nil, err
		}
		c := &ast.CompartmentDomain{Scope: scope, Inner: inner}
		setDomainPos(c, pos)
		return c, nil
	case token.LPAREN:
		p.next()
		d, err := p.domain()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return d, nil
	case token.IDENT:
		// Prefix transform style: lower($X).
		if IsTransform(p.cur().Text) && p.toks[p.i+1].Kind == token.LPAREN {
			pos := p.cur().Pos
			t, err := p.transformCall()
			if err != nil {
				return nil, err
			}
			if len(t.Args) == 0 {
				return nil, p.errf("transform %s needs a domain argument in prefix form", t.Name)
			}
			first, ok := t.Args[0].(*ast.DomainExpr)
			if !ok {
				return nil, p.errf("first argument of prefix transform %s must be a domain", t.Name)
			}
			t.Args = t.Args[1:]
			pipe := &ast.Pipe{Src: first.D, Steps: []*ast.Step{{P: pos, T: t}}}
			setDomainPos(pipe, pos)
			return pipe, nil
		}
	}
	return nil, p.errf("expected a domain ($key, #[scope] ... #, or transform(...)), found %s", p.cur())
}

// setDomainPos back-fills the position on embedded domainBase nodes; the
// ast package keeps the base struct unexported fields simple.
func setDomainPos(d ast.Domain, pos token.Pos) {
	switch t := d.(type) {
	case *ast.Ref:
		setPos(&t.P, pos)
	case *ast.PipeVar:
		setPos(&t.P, pos)
	case *ast.Pipe:
		setPos(&t.P, pos)
	case *ast.BinaryDomain:
		setPos(&t.P, pos)
	case *ast.CompartmentDomain:
		setPos(&t.P, pos)
	}
}

func setPos(p *token.Pos, pos token.Pos) { *p = pos }

// qid parses a qualified configuration reference:
// seg(.seg)*, seg = name[::inst][index].
func (p *parser) qid() (config.Pattern, error) {
	var pat config.Pattern
	for {
		seg, err := p.qidSeg()
		if err != nil {
			return config.Pattern{}, err
		}
		pat.Segs = append(pat.Segs, seg)
		if p.at(token.DOT) {
			p.next()
			continue
		}
		return pat, nil
	}
}

func (p *parser) qidSeg() (config.PatSeg, error) {
	var seg config.PatSeg
	switch p.cur().Kind {
	case token.IDENT:
		seg.Name = p.next().Text
	case token.STAR:
		p.next()
		seg.Name = "*"
	case token.DOLLAR:
		// Variable in name position: $Fabric.$ParamName (§4.2.2 allows
		// substitutable variables in both the scope and key parts).
		p.next()
		id, err := p.expect(token.IDENT)
		if err != nil {
			return seg, err
		}
		seg.NameVar = id.Text
	default:
		return seg, p.errf("expected a configuration name, found %s", p.cur())
	}
	if p.at(token.DCOLON) {
		p.next()
		switch p.cur().Kind {
		case token.DOLLAR:
			p.next()
			id, err := p.expect(token.IDENT)
			if err != nil {
				return seg, err
			}
			seg.InstVar = id.Text
		case token.IDENT:
			seg.Inst = p.next().Text
		case token.STRING:
			seg.Inst = p.next().Text
		case token.STAR:
			p.next()
			seg.Inst = "*"
		default:
			return seg, p.errf("expected an instance name after '::', found %s", p.cur())
		}
	}
	if p.at(token.LBRACK) {
		p.next()
		switch p.cur().Kind {
		case token.INT:
			t := p.next()
			n, ok := vtype.ParseInt(t.Text)
			if !ok || n <= 0 {
				return seg, &Error{Pos: t.Pos, Msg: "instance index must be a positive integer"}
			}
			seg.Index = int(n)
		case token.DOLLAR:
			p.next()
			id, err := p.expect(token.IDENT)
			if err != nil {
				return seg, err
			}
			seg.IndexVar = id.Text
		default:
			return seg, p.errf("expected an index after '[', found %s", p.cur())
		}
		if _, err := p.expect(token.RBRACK); err != nil {
			return seg, err
		}
	}
	return seg, nil
}

// ---- Predicates ----

func (p *parser) predicate() (ast.Pred, error) {
	return p.orPred()
}

func (p *parser) orPred() (ast.Pred, error) {
	l, err := p.andPred()
	if err != nil {
		return nil, err
	}
	for p.acceptContinuation(token.PIPE) {
		r, err := p.andPred()
		if err != nil {
			return nil, err
		}
		or := &ast.Or{L: l, R: r}
		setPredPos(or, l.Pos())
		l = or
	}
	return l, nil
}

func (p *parser) andPred() (ast.Pred, error) {
	l, err := p.notPred()
	if err != nil {
		return nil, err
	}
	for p.acceptContinuation(token.AMP) {
		r, err := p.notPred()
		if err != nil {
			return nil, err
		}
		and := &ast.And{L: l, R: r}
		setPredPos(and, l.Pos())
		l = and
	}
	return l, nil
}

func (p *parser) notPred() (ast.Pred, error) {
	if p.at(token.TILDE) {
		pos := p.cur().Pos
		p.next()
		x, err := p.notPred()
		if err != nil {
			return nil, err
		}
		n := &ast.Not{X: x}
		setPredPos(n, pos)
		return n, nil
	}
	return p.primaryPred()
}

func (p *parser) primaryPred() (ast.Pred, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LPAREN:
		p.next()
		inner, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return inner, nil
	case token.AT:
		p.next()
		id, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		m := &ast.MacroRef{Name: id.Text}
		setPredPos(m, pos)
		return m, nil
	case token.IF:
		p.next()
		if _, err := p.expect(token.LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		then, err := p.predicate()
		if err != nil {
			return nil, err
		}
		ip := &ast.IfPred{Cond: cond, Then: then}
		if p.at(token.ELSE) {
			p.next()
			els, err := p.predicate()
			if err != nil {
				return nil, err
			}
			ip.Else = els
		}
		setPredPos(ip, pos)
		return ip, nil
	case token.LBRACK:
		p.next()
		lo, err := p.exprArg()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.COMMA); err != nil {
			return nil, err
		}
		hi, err := p.exprArg()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBRACK); err != nil {
			return nil, err
		}
		r := &ast.Range{Lo: lo, Hi: hi}
		setPredPos(r, pos)
		return r, nil
	case token.LBRACE:
		p.next()
		var elems []ast.Expr
		for {
			e, err := p.exprArg()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.at(token.COMMA) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(token.RBRACE); err != nil {
			return nil, err
		}
		e := &ast.Enum{Elems: elems}
		setPredPos(e, pos)
		return e, nil
	case token.EQ, token.NEQ, token.LE, token.GE, token.LT, token.GT:
		op := p.next().Kind
		rhs, err := p.exprArg()
		if err != nil {
			return nil, err
		}
		r := &ast.Rel{Op: op, Rhs: rhs}
		setPredPos(r, pos)
		return r, nil
	case token.DOLLAR:
		// A domain in predicate position: relation with implicit current
		// element is not meaningful, but "$_ == $X" style chains reach
		// here when the pipeline variable starts the predicate.
		d, err := p.domainPrimary()
		if err != nil {
			return nil, err
		}
		if !p.cur().Kind.IsRelOp() {
			return nil, p.errf("expected a relation after domain in predicate position, found %s", p.cur())
		}
		op := p.next().Kind
		rhs, err := p.exprArg()
		if err != nil {
			return nil, err
		}
		if _, isPipeVar := d.(*ast.PipeVar); isPipeVar {
			r := &ast.Rel{Op: op, Rhs: rhs}
			setPredPos(r, pos)
			return r, nil
		}
		// Relation between two embedded domains: express as Rel with the
		// left side wrapped — the compiler pairs them.
		r := &ast.Rel{Op: op, Rhs: rhs}
		setPredPos(r, pos)
		return &ast.And{L: mustEmbedded(d, pos), R: r}, nil
	case token.ALL, token.EXISTS, token.ONE:
		kw := p.next()
		// Quantifier when a predicate follows; the bare primitive
		// "exists" (path existence) otherwise.
		if p.startsPredicate() {
			q := ast.QuantExists
			switch kw.Kind {
			case token.ALL:
				q = ast.QuantAll
			case token.ONE:
				q = ast.QuantOne
			}
			x, err := p.notPred()
			if err != nil {
				return nil, err
			}
			qp := &ast.QuantPred{Q: q, X: x}
			setPredPos(qp, pos)
			return qp, nil
		}
		if kw.Kind == token.EXISTS {
			pr := &ast.Prim{Name: "exists"}
			setPredPos(pr, pos)
			return pr, nil
		}
		return nil, &Error{Pos: kw.Pos, Msg: fmt.Sprintf("quantifier %q must be followed by a predicate", kw.Text)}
	case token.IDENT:
		return p.identPred()
	}
	return nil, p.errf("expected a predicate, found %s", p.cur())
}

// mustEmbedded converts a domain in predicate position into a pseudo
// predicate via an equality marker; used only for the rare "$A == $B"
// inside a predicate chain. The compiler rejects other shapes.
func mustEmbedded(d ast.Domain, pos token.Pos) ast.Pred {
	c := &ast.Call{Name: "__domain_lhs", Args: []ast.Expr{wrapDomain(d, pos)}}
	setPredPos(c, pos)
	return c
}

func wrapDomain(d ast.Domain, pos token.Pos) ast.Expr {
	de := &ast.DomainExpr{D: d}
	setExprPos(de, pos)
	return de
}

// startsPredicate reports whether the current token can begin a predicate.
func (p *parser) startsPredicate() bool {
	switch p.cur().Kind {
	case token.LBRACK, token.LBRACE, token.LPAREN, token.TILDE, token.AT,
		token.EQ, token.NEQ, token.LE, token.GE, token.LT, token.GT,
		token.IDENT, token.DOLLAR, token.IF:
		return true
	}
	return false
}

func (p *parser) identPred() (ast.Pred, error) {
	t := p.next()
	pos := t.Pos
	name := t.Text
	// list(elem) parameterized type.
	if name == "list" && p.at(token.LPAREN) {
		p.next()
		elemTok, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		elem, ok := vtype.KindFromName(elemTok.Text)
		if !ok {
			return nil, &Error{Pos: elemTok.Pos, Msg: fmt.Sprintf("unknown element type %q", elemTok.Text)}
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		tp := &ast.TypePred{T: vtype.ListOf(elem)}
		setPredPos(tp, pos)
		return tp, nil
	}
	if name == "match" && p.at(token.LPAREN) {
		p.next()
		pat, err := p.expect(token.STRING)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		m := &ast.Match{Pattern: pat.Text}
		setPredPos(m, pos)
		return m, nil
	}
	if k, ok := vtype.KindFromName(name); ok && !p.at(token.LPAREN) {
		tp := &ast.TypePred{T: vtype.Scalar(k)}
		setPredPos(tp, pos)
		return tp, nil
	}
	if primitives[name] && !p.at(token.LPAREN) {
		pr := &ast.Prim{Name: name}
		setPredPos(pr, pos)
		return pr, nil
	}
	// Extension predicate call, with or without arguments.
	c := &ast.Call{Name: name}
	if p.at(token.LPAREN) {
		p.next()
		for !p.at(token.RPAREN) {
			a, err := p.exprArg()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, a)
			if p.at(token.COMMA) {
				p.next()
			}
		}
		p.next() // )
	}
	setPredPos(c, pos)
	return c, nil
}

func setPredPos(pr ast.Pred, pos token.Pos) {
	switch t := pr.(type) {
	case *ast.And:
		setPos(&t.P, pos)
	case *ast.Or:
		setPos(&t.P, pos)
	case *ast.Not:
		setPos(&t.P, pos)
	case *ast.QuantPred:
		setPos(&t.P, pos)
	case *ast.IfPred:
		setPos(&t.P, pos)
	case *ast.TypePred:
		setPos(&t.P, pos)
	case *ast.Prim:
		setPos(&t.P, pos)
	case *ast.Match:
		setPos(&t.P, pos)
	case *ast.Range:
		setPos(&t.P, pos)
	case *ast.Enum:
		setPos(&t.P, pos)
	case *ast.Rel:
		setPos(&t.P, pos)
	case *ast.MacroRef:
		setPos(&t.P, pos)
	case *ast.Call:
		setPos(&t.P, pos)
	}
}

func setExprPos(e ast.Expr, pos token.Pos) {
	switch t := e.(type) {
	case *ast.Lit:
		setPos(&t.P, pos)
	case *ast.DomainExpr:
		setPos(&t.P, pos)
	}
}

// ---- Expressions ----

// exprArg parses an argument expression: literal, $ref, $_, or a
// transformation applied to the current element (at(0) inside a tuple).
func (p *parser) exprArg() (ast.Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.STRING, token.INT, token.FLOAT:
		t := p.next()
		l := &ast.Lit{Kind: t.Kind, Text: t.Text}
		setExprPos(l, pos)
		return l, nil
	case token.MINUS:
		p.next()
		num := p.cur()
		if num.Kind != token.INT && num.Kind != token.FLOAT {
			return nil, p.errf("expected a number after '-', found %s", p.cur())
		}
		p.next()
		l := &ast.Lit{Kind: num.Kind, Text: "-" + num.Text}
		setExprPos(l, pos)
		return l, nil
	case token.DOLLAR:
		d, err := p.domainPrimary()
		if err != nil {
			return nil, err
		}
		// Pipelines nest inside argument position:
		// union($Pool.Members -> split(';')).
		var steps []*ast.Step
		for p.at(token.ARROW) && p.toks[p.i+1].Kind == token.IDENT &&
			IsTransform(p.toks[p.i+1].Text) && p.toks[p.i+2].Kind == token.LPAREN {
			p.next() // ->
			tpos := p.cur().Pos
			tr, err := p.transformCall()
			if err != nil {
				return nil, err
			}
			steps = append(steps, &ast.Step{P: tpos, T: tr})
		}
		if len(steps) > 0 {
			pipe := &ast.Pipe{Src: d, Steps: steps}
			setDomainPos(pipe, pos)
			d = pipe
		}
		return wrapDomain(d, pos), nil
	case token.IDENT:
		if IsTransform(p.cur().Text) && p.toks[p.i+1].Kind == token.LPAREN {
			t, err := p.transformCall()
			if err != nil {
				return nil, err
			}
			// Prefix style when the first argument is a real domain
			// ("count(split($MacRange, ';'))"); otherwise the transform
			// applies to the current pipeline element ("at(0)").
			src := ast.Domain(&ast.PipeVar{})
			if len(t.Args) > 0 {
				if de, ok := t.Args[0].(*ast.DomainExpr); ok {
					if _, isPV := de.D.(*ast.PipeVar); !isPV {
						src = de.D
						t.Args = t.Args[1:]
					}
				}
			}
			pipe := &ast.Pipe{Src: src, Steps: []*ast.Step{{P: pos, T: t}}}
			setDomainPos(pipe, pos)
			return wrapDomain(pipe, pos), nil
		}
		// A bare identifier argument is treated as a string literal; this
		// is convenient for enum members written without quotes.
		t := p.next()
		l := &ast.Lit{Kind: token.STRING, Text: t.Text}
		setExprPos(l, pos)
		return l, nil
	}
	return nil, p.errf("expected an expression, found %s", p.cur())
}
