package parser

import (
	"strings"
	"testing"

	"confvalley/internal/cpl/ast"
	"confvalley/internal/cpl/token"
	"confvalley/internal/vtype"
)

func parseOne(t *testing.T, src string) ast.Stmt {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("Parse(%q) = %d statements, want 1", src, len(stmts))
	}
	return stmts[0]
}

func spec(t *testing.T, src string) *ast.SpecStmt {
	t.Helper()
	s, ok := parseOne(t, src).(*ast.SpecStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *ast.SpecStmt", src, parseOne(t, src))
	}
	return s
}

func TestSimpleSpec(t *testing.T) {
	s := spec(t, "$OSBuildPath -> path & exists")
	ref, ok := s.Domain.(*ast.Ref)
	if !ok || ref.Pattern.String() != "OSBuildPath" {
		t.Fatalf("domain = %#v", s.Domain)
	}
	and, ok := s.Pred.(*ast.And)
	if !ok {
		t.Fatalf("pred = %T", s.Pred)
	}
	tp, ok := and.L.(*ast.TypePred)
	if !ok || tp.T != vtype.Scalar(vtype.KindPath) {
		t.Errorf("left = %#v", and.L)
	}
	pr, ok := and.R.(*ast.Prim)
	if !ok || pr.Name != "exists" {
		t.Errorf("right = %#v", and.R)
	}
}

func TestTypeAndRange(t *testing.T) {
	s := spec(t, "$Fabric.AlertFailNodesThreshold -> int & nonempty & [5,15]")
	if s.Quant != ast.QuantAll {
		t.Errorf("quant = %v", s.Quant)
	}
	// ((int & nonempty) & [5,15])
	outer := s.Pred.(*ast.And)
	rng, ok := outer.R.(*ast.Range)
	if !ok {
		t.Fatalf("range = %T", outer.R)
	}
	lo := rng.Lo.(*ast.Lit)
	hi := rng.Hi.(*ast.Lit)
	if lo.Text != "5" || hi.Text != "15" || lo.Kind != token.INT {
		t.Errorf("bounds = %v..%v", lo.Text, hi.Text)
	}
}

func TestEnumFromDomain(t *testing.T) {
	s := spec(t, "$Cluster.MachinePool -> {$MachinePool.Name}")
	en, ok := s.Pred.(*ast.Enum)
	if !ok || len(en.Elems) != 1 {
		t.Fatalf("pred = %#v", s.Pred)
	}
	de, ok := en.Elems[0].(*ast.DomainExpr)
	if !ok {
		t.Fatalf("elem = %T", en.Elems[0])
	}
	if de.D.(*ast.Ref).Pattern.String() != "MachinePool.Name" {
		t.Errorf("enum domain = %v", de.D)
	}
}

func TestCompartmentBlock(t *testing.T) {
	src := `
compartment Cluster {
  $ProxyIP -> [$StartIP, $EndIP]
  $IPv6Prefix -> ~nonempty | @UniqueCIDR
}`
	st := parseOne(t, src).(*ast.BlockStmt)
	if st.Kind != ast.BlockCompartment || st.Scope.String() != "Cluster" {
		t.Fatalf("block = %+v", st)
	}
	if len(st.Body) != 2 {
		t.Fatalf("body = %d statements", len(st.Body))
	}
	s1 := st.Body[0].(*ast.SpecStmt)
	rng := s1.Pred.(*ast.Range)
	if rng.Lo.(*ast.DomainExpr).D.(*ast.Ref).Pattern.String() != "StartIP" {
		t.Errorf("range lo = %#v", rng.Lo)
	}
	s2 := st.Body[1].(*ast.SpecStmt)
	or := s2.Pred.(*ast.Or)
	if _, ok := or.L.(*ast.Not); !ok {
		t.Errorf("or.L = %T", or.L)
	}
	if m, ok := or.R.(*ast.MacroRef); !ok || m.Name != "UniqueCIDR" {
		t.Errorf("or.R = %#v", or.R)
	}
}

func TestNamespaceSingleStatement(t *testing.T) {
	st := parseOne(t, "namespace r.s $k1 -> nonempty").(*ast.BlockStmt)
	if st.Kind != ast.BlockNamespace || st.Scope.String() != "r.s" || len(st.Body) != 1 {
		t.Fatalf("block = %+v", st)
	}
}

func TestInlineCompartmentDomain(t *testing.T) {
	s := spec(t, "#[Datacenter] $Machinepool.FillFactor# -> consistent")
	cd, ok := s.Domain.(*ast.CompartmentDomain)
	if !ok || cd.Scope.String() != "Datacenter" {
		t.Fatalf("domain = %#v", s.Domain)
	}
	if cd.Inner.(*ast.Ref).Pattern.String() != "Machinepool.FillFactor" {
		t.Errorf("inner = %v", cd.Inner)
	}
	if pr, ok := s.Pred.(*ast.Prim); !ok || pr.Name != "consistent" {
		t.Errorf("pred = %#v", s.Pred)
	}
}

func TestIfStmtWithQuantifiedCondition(t *testing.T) {
	src := `
if (exists $RoutingEntry.Gateway == 'LoadBalancerGateway')
  $LoadBalancerSet.Device -> nonempty
`
	st := parseOne(t, src).(*ast.IfStmt)
	if st.Cond.Quant != ast.QuantExists {
		t.Errorf("cond quant = %v", st.Cond.Quant)
	}
	rel, ok := st.Cond.Pred.(*ast.Rel)
	if !ok || rel.Op != token.EQ {
		t.Fatalf("cond pred = %#v", st.Cond.Pred)
	}
	if rel.Rhs.(*ast.Lit).Text != "LoadBalancerGateway" {
		t.Errorf("rhs = %#v", rel.Rhs)
	}
	if len(st.Then) != 1 || st.Else != nil {
		t.Errorf("then/else = %d/%v", len(st.Then), st.Else)
	}
}

func TestIfElseWithVariableBinding(t *testing.T) {
	src := `
if ($CloudName -> ~match('UtilityFabric')) {
  $Fabric::$CloudName.TenantName -> split(':') -> at(0) -> $_ == $UfcName
} else {
  $Fabric::$CloudName.TenantName -> ~nonempty
}`
	st := parseOne(t, src).(*ast.IfStmt)
	if _, ok := st.Cond.Pred.(*ast.Not); !ok {
		t.Fatalf("cond = %#v", st.Cond.Pred)
	}
	then := st.Then[0].(*ast.SpecStmt)
	pipe, ok := then.Domain.(*ast.Pipe)
	if !ok || len(pipe.Steps) != 2 {
		t.Fatalf("then domain = %#v", then.Domain)
	}
	if pipe.Steps[0].T.Name != "split" || pipe.Steps[1].T.Name != "at" {
		t.Errorf("steps = %v, %v", pipe.Steps[0].T.Name, pipe.Steps[1].T.Name)
	}
	src0 := pipe.Src.(*ast.Ref)
	if src0.Pattern.Segs[0].InstVar != "CloudName" {
		t.Errorf("variable binding: %+v", src0.Pattern.Segs[0])
	}
	rel, ok := then.Pred.(*ast.Rel)
	if !ok || rel.Op != token.EQ {
		t.Fatalf("then pred = %#v", then.Pred)
	}
	els := st.Else[0].(*ast.SpecStmt)
	if _, ok := els.Pred.(*ast.Not); !ok {
		t.Errorf("else pred = %#v", els.Pred)
	}
}

func TestVipRangesPipeline(t *testing.T) {
	src := `$MachinPoolName -> foreach($MachinPool::$_.LoadBalancer.VipRanges)
  -> if (nonempty) split('-')
  -> [at(0), at(1)] -> exists [$StartIP, $EndIP]`
	s := spec(t, src)
	pipe := s.Domain.(*ast.Pipe)
	if len(pipe.Steps) != 3 {
		t.Fatalf("steps = %d", len(pipe.Steps))
	}
	if pipe.Steps[0].T.Name != "foreach" {
		t.Errorf("step0 = %v", pipe.Steps[0].T.Name)
	}
	if pipe.Steps[1].Guard == nil || pipe.Steps[1].T.Name != "split" {
		t.Errorf("step1 = %+v", pipe.Steps[1])
	}
	if pipe.Steps[2].T.Name != "tuple" || len(pipe.Steps[2].T.Args) != 2 {
		t.Errorf("step2 = %+v", pipe.Steps[2].T)
	}
	qp, ok := s.Pred.(*ast.QuantPred)
	if !ok || qp.Q != ast.QuantExists {
		t.Fatalf("pred = %#v", s.Pred)
	}
	if _, ok := qp.X.(*ast.Range); !ok {
		t.Errorf("quantified pred = %T", qp.X)
	}
}

func TestCommands(t *testing.T) {
	stmts, err := Parse(`
load 'xml' '/path/to/settings'
load 'rest' '10.119.64.74:443' as RunningInstance
include 'type_checks.prop'
let UniqueCIDR := unique & cidr
policy on_violation 'continue'
get $Fabric.Timeout
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 6 {
		t.Fatalf("statements = %d", len(stmts))
	}
	l1 := stmts[0].(*ast.LoadStmt)
	if l1.Driver != "xml" || l1.Source != "/path/to/settings" || l1.Scope != "" {
		t.Errorf("load1 = %+v", l1)
	}
	l2 := stmts[1].(*ast.LoadStmt)
	if l2.Scope != "RunningInstance" {
		t.Errorf("load2 scope = %q", l2.Scope)
	}
	inc := stmts[2].(*ast.IncludeStmt)
	if inc.Path != "type_checks.prop" {
		t.Errorf("include = %+v", inc)
	}
	let := stmts[3].(*ast.LetStmt)
	if let.Name != "UniqueCIDR" {
		t.Errorf("let = %+v", let)
	}
	if _, ok := let.Pred.(*ast.And); !ok {
		t.Errorf("let pred = %T", let.Pred)
	}
	pol := stmts[4].(*ast.PolicyStmt)
	if pol.Name != "on_violation" || pol.Value != "continue" {
		t.Errorf("policy = %+v", pol)
	}
	if _, ok := stmts[5].(*ast.GetStmt); !ok {
		t.Errorf("get = %T", stmts[5])
	}
}

func TestStatementLevelRelation(t *testing.T) {
	s := spec(t, "$VLAN.StartIP <= $VLAN.EndIP")
	rel := s.Pred.(*ast.Rel)
	if rel.Op != token.LE {
		t.Errorf("op = %v", rel.Op)
	}
	rhs := rel.Rhs.(*ast.DomainExpr).D.(*ast.Ref)
	if rhs.Pattern.String() != "VLAN.EndIP" {
		t.Errorf("rhs = %v", rhs.Pattern)
	}
}

func TestUnicodeSpec(t *testing.T) {
	s := spec(t, "#[Datacenter] $Machinepool.FillFactor# → consistent")
	if _, ok := s.Domain.(*ast.CompartmentDomain); !ok {
		t.Errorf("unicode arrow domain = %T", s.Domain)
	}
}

func TestInstanceNotations(t *testing.T) {
	s := spec(t, "$Fabric::inst1.RecoveryAttempts -> int")
	ref := s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Inst != "inst1" {
		t.Errorf("named instance = %+v", ref.Pattern.Segs[0])
	}
	s = spec(t, "$Fabric[1].RecoveryAttempts -> int")
	ref = s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Index != 1 {
		t.Errorf("numbered instance = %+v", ref.Pattern.Segs[0])
	}
	s = spec(t, "$CloudGroup::'SSD Cluster'.ControllerReplicas -> int")
	ref = s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Inst != "SSD Cluster" {
		t.Errorf("quoted instance = %+v", ref.Pattern.Segs[0])
	}
	s = spec(t, "$*IP -> ip")
	ref = s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Name != "*IP" {
		t.Errorf("wildcard key = %+v", ref.Pattern.Segs[0])
	}
	s = spec(t, "$*.SecretKey -> nonempty")
	ref = s.Domain.(*ast.Ref)
	if ref.Pattern.Segs[0].Name != "*" || ref.Pattern.Segs[1].Name != "SecretKey" {
		t.Errorf("wildcard scope = %v", ref.Pattern)
	}
}

func TestListTypePredicate(t *testing.T) {
	s := spec(t, "$ProxyIPs -> list(ip)")
	tp := s.Pred.(*ast.TypePred)
	if tp.T != vtype.ListOf(vtype.KindIP) {
		t.Errorf("type = %v", tp.T)
	}
}

func TestQuantifiedStatement(t *testing.T) {
	s := spec(t, "exists $Cluster.Role -> == 'controller'")
	if s.Quant != ast.QuantExists {
		t.Errorf("quant = %v", s.Quant)
	}
	s = spec(t, "one $Cluster.Role -> == 'primary'")
	if s.Quant != ast.QuantOne {
		t.Errorf("quant = %v", s.Quant)
	}
}

func TestIfPredTerminal(t *testing.T) {
	s := spec(t, "$X -> if (nonempty) ip else consistent")
	ip, ok := s.Pred.(*ast.IfPred)
	if !ok {
		t.Fatalf("pred = %T", s.Pred)
	}
	if _, ok := ip.Then.(*ast.TypePred); !ok {
		t.Errorf("then = %T", ip.Then)
	}
	if _, ok := ip.Else.(*ast.Prim); !ok {
		t.Errorf("else = %T", ip.Else)
	}
}

func TestBinaryDomains(t *testing.T) {
	s := spec(t, "$A + $B -> [0, 100]")
	bd, ok := s.Domain.(*ast.BinaryDomain)
	if !ok || bd.Op != token.PLUS {
		t.Fatalf("domain = %#v", s.Domain)
	}
	s = spec(t, "count($MacRange) == count($IpRange)")
	pipe, ok := s.Domain.(*ast.Pipe)
	if !ok || pipe.Steps[0].T.Name != "count" {
		t.Fatalf("prefix transform = %#v", s.Domain)
	}
	rel := s.Pred.(*ast.Rel)
	rhsPipe := rel.Rhs.(*ast.DomainExpr).D.(*ast.Pipe)
	if rhsPipe.Steps[0].T.Name != "count" {
		t.Errorf("rhs = %#v", rel.Rhs)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"$",
		"$X ->",
		"$X -> [5,]",
		"$X -> {",
		"load 'xml'",
		"let X := ",
		"namespace { }",
		"$X nonempty",
		"compartment C { $X -> int",
		"if ($X -> int) ",
		"$X -> match(5)",
		"$X -> list(nosuch)",
		"all",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("$X ->\n  -> int")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "cpl:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	// Render then re-parse: ASTs should agree structurally (idempotent
	// rendering).
	srcs := []string{
		"$OSBuildPath -> path & exists",
		"$Fabric.AlertFailNodesThreshold -> int & nonempty & [5, 15]",
		"#[Datacenter] $Machinepool.FillFactor# -> consistent",
		"$Cluster.MachinePool -> {$MachinePool.Name}",
		"$IPv6Prefix -> ~nonempty | @UniqueCIDR",
		"exists $Cluster.Role -> == 'controller'",
		"$X -> split(':') -> at(0) -> == 'prefix'",
	}
	for _, src := range srcs {
		s1 := spec(t, src)
		rendered := ast.Render(s1)
		s2 := spec(t, rendered)
		if ast.Render(s2) != rendered {
			t.Errorf("render not idempotent:\n  src: %s\n  r1: %s\n  r2: %s", src, rendered, ast.Render(s2))
		}
	}
}

func TestParsePredicateStandalone(t *testing.T) {
	p, err := ParsePredicate("unique & ip")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*ast.And); !ok {
		t.Errorf("pred = %T", p)
	}
	if _, err := ParsePredicate("unique & ip extra"); err == nil {
		t.Error("trailing tokens should error")
	}
}

func TestMultiStatementProgram(t *testing.T) {
	src := `
/* Prepare configuration sources */
load 'kv' 'cloudsettings'
let UniqueCIDR := unique & cidr

// machinepool in cluster is one of the defined machinepool names
$Cluster.MachinePool -> {$MachinePool.Name}

$Fabric.AlertFailNodesThreshold -> int & nonempty
  & [5,15]

compartment Cluster {
  $ProxyIP -> [$StartIP, $EndIP]
}

if (exists $RoutingEntry.Gateway == 'LoadBalancerGateway')
  $LoadBalancerSet.Device -> nonempty
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 6 {
		for _, s := range stmts {
			t.Logf("  %s", ast.Render(s))
		}
		t.Fatalf("statements = %d, want 6", len(stmts))
	}
}

// Every statement node carries the position of its first token, so
// compile and lint diagnostics can render file:line:col uniformly.
func TestStatementPositions(t *testing.T) {
	src := `load 'ini' '/etc/app.ini'
include 'common.cpl'
let M := nonempty
policy on_violation 'continue'
$Fabric.X -> int
if (exists $F -> int) { $Y -> bool }
namespace Fabric {
  $Z -> int
}
get $Fabric.X
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{1, 2, 3, 4, 5, 6, 7, 10}
	if len(stmts) != len(wantLines) {
		t.Fatalf("statements = %d, want %d", len(stmts), len(wantLines))
	}
	for i, st := range stmts {
		pos := st.Pos()
		if pos.Line != wantLines[i] || pos.Col != 1 {
			t.Errorf("stmt %d (%T) pos = %s, want %d:1", i, st, pos, wantLines[i])
		}
	}
	// Nested statements are positioned too.
	ifst := stmts[5].(*ast.IfStmt)
	if p := ifst.Then[0].Pos(); p.Line != 6 || p.Col != 25 {
		t.Errorf("if-body spec pos = %s, want 6:25", p)
	}
	block := stmts[6].(*ast.BlockStmt)
	if p := block.Body[0].Pos(); p.Line != 8 || p.Col != 3 {
		t.Errorf("block-body spec pos = %s, want 8:3", p)
	}
}
