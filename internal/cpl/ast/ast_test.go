package ast

import (
	"strings"
	"testing"

	"confvalley/internal/config"
	"confvalley/internal/cpl/token"
	"confvalley/internal/vtype"
)

func lit(s string) *Lit       { return &Lit{Kind: token.STRING, Text: s} }
func intLit(s string) *Lit    { return &Lit{Kind: token.INT, Text: s} }
func ref(segs ...string) *Ref { return &Ref{Pattern: config.P(segs...)} }

func TestRenderCommands(t *testing.T) {
	cases := []struct {
		node Node
		want string
	}{
		{&LoadStmt{Driver: "xml", Source: "/p"}, "load 'xml' '/p'"},
		{&LoadStmt{Driver: "kv", Source: "s", Scope: "Fabric"}, "load 'kv' 's' as Fabric"},
		{&IncludeStmt{Path: "a.cpl"}, "include 'a.cpl'"},
		{&LetStmt{Name: "M", Pred: &Prim{Name: "unique"}}, "let M := unique"},
		{&PolicyStmt{Name: "severity", Value: "error"}, "policy severity 'error'"},
		{&GetStmt{Domain: ref("Fabric", "X")}, "get $Fabric.X"},
	}
	for _, c := range cases {
		if got := Render(c.node); got != c.want {
			t.Errorf("Render = %q, want %q", got, c.want)
		}
	}
}

func TestRenderPredicates(t *testing.T) {
	cases := []struct {
		node Node
		want string
	}{
		{&And{L: &TypePred{T: vtype.Scalar(vtype.KindInt)}, R: &Prim{Name: "nonempty"}}, "int & nonempty"},
		{&Or{L: &Not{X: &Prim{Name: "nonempty"}}, R: &MacroRef{Name: "U"}}, "~nonempty | @U"},
		{&QuantPred{Q: QuantExists, X: &Range{Lo: intLit("1"), Hi: intLit("5")}}, "exists [1, 5]"},
		{&IfPred{Cond: &Prim{Name: "nonempty"}, Then: &TypePred{T: vtype.Scalar(vtype.KindIP)}, Else: &Prim{Name: "consistent"}},
			"if (nonempty) ip else consistent"},
		{&Match{Pattern: "*.vhd"}, "match('*.vhd')"},
		{&Enum{Elems: []Expr{lit("a"), lit("b")}}, "{'a', 'b'}"},
		{&Rel{Op: token.LE, Rhs: &DomainExpr{D: ref("B")}}, "<= $B"},
		{&Call{Name: "incidr", Args: []Expr{lit("10.0.0.0/8")}}, "incidr('10.0.0.0/8')"},
		{&TypePred{T: vtype.ListOf(vtype.KindIP)}, "list(ip)"},
	}
	for _, c := range cases {
		if got := Render(c.node); got != c.want {
			t.Errorf("Render = %q, want %q", got, c.want)
		}
	}
}

func TestRenderDomains(t *testing.T) {
	pipe := &Pipe{
		Src: ref("X"),
		Steps: []*Step{
			{T: &Transform{Name: "split", Args: []Expr{lit(":")}}},
			{Guard: &Prim{Name: "nonempty"}, T: &Transform{Name: "at", Args: []Expr{intLit("0")}}},
			{T: &Transform{Name: "tuple", Args: []Expr{lit("a"), lit("b")}}},
		},
	}
	want := "$X -> split(':') -> if (nonempty) at(0) -> ['a', 'b']"
	if got := Render(pipe); got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	bd := &BinaryDomain{Op: token.MINUS, L: ref("Max"), R: ref("Min")}
	if got := Render(bd); got != "$Max - $Min" {
		t.Errorf("Render = %q", got)
	}
	cd := &CompartmentDomain{Scope: config.P("DC"), Inner: ref("Pool", "F")}
	if got := Render(cd); got != "#[DC] $Pool.F#" {
		t.Errorf("Render = %q", got)
	}
	if got := Render(&PipeVar{}); got != "$_" {
		t.Errorf("Render = %q", got)
	}
}

func TestRenderStatements(t *testing.T) {
	spec := &SpecStmt{
		Quant:  QuantOne,
		Domain: ref("Role"),
		Pred:   &Rel{Op: token.EQ, Rhs: lit("primary")},
	}
	if got := Render(spec); got != "one $Role -> == 'primary'" {
		t.Errorf("Render = %q", got)
	}
	spec.Message = "exactly one primary"
	if got := Render(spec); !strings.HasSuffix(got, "message 'exactly one primary'") {
		t.Errorf("Render = %q", got)
	}
	ifStmt := &IfStmt{Cond: spec, Then: []Stmt{spec}, Else: []Stmt{spec}}
	if got := Render(ifStmt); !strings.Contains(got, "if (") || !strings.Contains(got, "else") {
		t.Errorf("Render = %q", got)
	}
	block := &BlockStmt{Kind: BlockCompartment, Scope: config.P("Cluster"), Body: []Stmt{spec}}
	if got := Render(block); !strings.HasPrefix(got, "compartment Cluster") {
		t.Errorf("Render = %q", got)
	}
	ns := &BlockStmt{Kind: BlockNamespace, Scope: config.P("r", "s")}
	if got := Render(ns); !strings.HasPrefix(got, "namespace r.s") {
		t.Errorf("Render = %q", got)
	}
}

func TestQuantString(t *testing.T) {
	if QuantAll.String() != "all" || QuantExists.String() != "exists" || QuantOne.String() != "one" {
		t.Error("quantifier spellings wrong")
	}
}

func TestPositions(t *testing.T) {
	s := &Step{P: token.Pos{Line: 3, Col: 7}}
	if s.Pos().Line != 3 {
		t.Error("step position lost")
	}
	tr := &Transform{P: token.Pos{Line: 2, Col: 1}}
	if tr.Pos().Col != 1 {
		t.Error("transform position lost")
	}
}
