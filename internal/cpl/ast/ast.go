// Package ast defines the abstract syntax tree for CPL specifications.
// The shapes follow the grammar in Listing 4 of the paper: statements are
// commands or predicates; predicates are built recursively from primitives
// with &, |, ~, quantifiers, if/else, namespace and compartment blocks;
// domains are configuration references, transformed domains, binary
// expressions over domains, or compartment-scoped domains.
package ast

import (
	"strings"

	"confvalley/internal/config"
	"confvalley/internal/cpl/token"
	"confvalley/internal/vtype"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---- Statements ----

// Stmt is a top-level CPL statement.
type Stmt interface {
	Node
	stmt()
}

type stmtBase struct{ P token.Pos }

func (b stmtBase) Pos() token.Pos { return b.P }
func (stmtBase) stmt()            {}

// LoadStmt provides a configuration source for the session:
// load 'xml' '/path/to/settings' [as Fabric].
type LoadStmt struct {
	stmtBase
	Driver string
	Source string
	Scope  string // optional scope prefix; empty if none
}

// IncludeStmt adds the statements of another specification file:
// include 'type_checks.prop'.
type IncludeStmt struct {
	stmtBase
	Path string
}

// LetStmt defines a named predicate macro:
// let UniqueIP := unique & ip.
type LetStmt struct {
	stmtBase
	Name string
	Pred Pred
}

// PolicyStmt sets a validation policy option:
// policy on_violation 'continue'.
type PolicyStmt struct {
	stmtBase
	Name  string
	Value string
}

// GetStmt prints the instances of a domain (console convenience).
type GetStmt struct {
	stmtBase
	Domain Domain
}

// SpecStmt is the workhorse statement: domain -> predicate, with an
// optional quantifier (default ∀).
type SpecStmt struct {
	stmtBase
	Quant  Quant
	Domain Domain
	Pred   Pred
	// Message overrides the auto-generated error message for this check
	// (§4.4): "$X -> int message 'timeout must be a number'".
	Message string
	// Text is the original source line, kept for reports.
	Text string
}

// IfStmt guards statements with a condition:
// if (<predicate statement>) { ... } else { ... }.
// When the condition's domain is a simple reference, the body is evaluated
// once per distinct value with the reference's leaf name bound as a
// variable (the Listing 5 $CloudName idiom).
type IfStmt struct {
	stmtBase
	Cond *SpecStmt
	Then []Stmt
	Else []Stmt
}

// BlockStmt scopes statements under a namespace or compartment.
type BlockStmt struct {
	stmtBase
	Kind  BlockKind
	Scope config.Pattern
	Body  []Stmt
}

// BlockKind distinguishes namespace from compartment blocks.
type BlockKind int

// Block kinds.
const (
	BlockNamespace BlockKind = iota
	BlockCompartment
)

// Quant is a CPL quantifier.
type Quant int

// Quantifiers. QuantAll (∀) is the default.
const (
	QuantAll    Quant = iota // every element must satisfy the predicate
	QuantExists              // at least one element must satisfy it
	QuantOne                 // exactly one element must satisfy it
)

// String returns the CPL spelling.
func (q Quant) String() string {
	switch q {
	case QuantExists:
		return "exists"
	case QuantOne:
		return "one"
	default:
		return "all"
	}
}

// ---- Domains ----

// Domain produces the elements a predicate is evaluated over.
type Domain interface {
	Node
	domain()
}

type domainBase struct{ P token.Pos }

func (b domainBase) Pos() token.Pos { return b.P }
func (domainBase) domain()          {}

// Ref is a configuration reference: $Cloud.Tenant.SecretKey.
type Ref struct {
	domainBase
	Pattern config.Pattern
}

// PipeVar is the pipeline variable $_ referring to the previous step's
// result (§4.2.3).
type PipeVar struct {
	domainBase
}

// Pipe sends a source domain through transformation steps:
// $X -> split(':') -> at(0).
type Pipe struct {
	domainBase
	Src   Domain
	Steps []*Step
}

// Step is one pipeline stage: a transformation, optionally guarded
// ("if (nonempty) split('-')" applies the transform only to elements
// satisfying the guard; others are dropped from the pipeline).
type Step struct {
	P     token.Pos
	Guard Pred // nil when unguarded
	T     *Transform
}

// Pos returns the step position.
func (s *Step) Pos() token.Pos { return s.P }

// Transform is a named transformation with arguments: split(','), at(0),
// foreach($MachinePool::$_.VipRanges), or a tuple constructor
// [at(0), at(1)].
type Transform struct {
	P    token.Pos
	Name string // "tuple" for the [a, b] constructor
	Args []Expr
}

// Pos returns the transform position.
func (t *Transform) Pos() token.Pos { return t.P }

// BinaryDomain combines two domains with an arithmetic operator; the
// result domain is the operator applied pairwise (§4.2.1 transformation
// over multiple domains).
type BinaryDomain struct {
	domainBase
	Op   token.Kind // PLUS, MINUS, STAR, SLASH
	L, R Domain
}

// CompartmentDomain is the inline form #[Scope] $X# restricting pairing to
// compartment instances (Listing 5's fill-factor example).
type CompartmentDomain struct {
	domainBase
	Scope config.Pattern
	Inner Domain
}

// ---- Predicates ----

// Pred is a boolean property of domain elements.
type Pred interface {
	Node
	pred()
}

type predBase struct{ P token.Pos }

func (b predBase) Pos() token.Pos { return b.P }
func (predBase) pred()            {}

// And, Or, Not combine predicates.
type And struct {
	predBase
	L, R Pred
}

// Or is disjunction.
type Or struct {
	predBase
	L, R Pred
}

// Not is negation (~).
type Not struct {
	predBase
	X Pred
}

// QuantPred applies a quantifier to an inner predicate over the current
// element set, e.g. "-> exists [$StartIP, $EndIP]".
type QuantPred struct {
	predBase
	Q Quant
	X Pred
}

// IfPred is predicate-level conditional: if (p) q [else r].
type IfPred struct {
	predBase
	Cond, Then, Else Pred // Else may be nil
}

// TypePred asserts the element conforms to a value type: int, ip, path...
type TypePred struct {
	predBase
	T vtype.Type
}

// Prim is a niladic primitive predicate: nonempty, unique, consistent,
// ordered, exists (path existence), reachable.
type Prim struct {
	predBase
	Name string
}

// Match asserts the element matches a pattern. Patterns are glob-style by
// default; a pattern enclosed in slashes (/re/) is a regular expression.
type Match struct {
	predBase
	Pattern string
}

// Range asserts the element lies in [Lo, Hi] inclusive. Bounds may be
// literals or domain references (paired per compartment instance).
type Range struct {
	predBase
	Lo, Hi Expr
}

// Enum asserts the element equals one of the listed values. Elements may
// be literals or domain references ("machinepool is one of the defined
// machinepool names").
type Enum struct {
	predBase
	Elems []Expr
}

// Rel relates the current element to an expression: == 'x', <= $Other.
// When used at statement level ($A <= $B) the engine pairs the element
// sets of both sides.
type Rel struct {
	predBase
	Op  token.Kind
	Rhs Expr
}

// MacroRef references a let-defined predicate: @UniqueCIDR.
type MacroRef struct {
	predBase
	Name string
}

// Call is an extension predicate invocation with arguments, dispatched
// through the predicate registry (§4.2.6 plug-ins).
type Call struct {
	predBase
	Name string
	Args []Expr
}

// ---- Expressions ----

// Expr is a scalar-producing expression usable in predicate arguments:
// literals, domain references, or the pipeline variable.
type Expr interface {
	Node
	expr()
}

type exprBase struct{ P token.Pos }

func (b exprBase) Pos() token.Pos { return b.P }
func (exprBase) expr()            {}

// Lit is a literal string, integer or float.
type Lit struct {
	exprBase
	Kind token.Kind // STRING, INT or FLOAT
	Text string
}

// DomainExpr wraps a domain (usually a Ref) in expression position.
type DomainExpr struct {
	exprBase
	D Domain
}

// ---- Traversal ----

// Inspect traverses the tree rooted at n in depth-first source order,
// calling f on every node. If f returns false for a node, its children
// are skipped. Statement bodies, predicate operands, pipeline steps,
// transform arguments and expression-embedded domains are all visited,
// so a single Inspect sees every position-carrying construct in a
// statement — the traversal the lint analyzers are built on.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch t := n.(type) {
	case *LetStmt:
		Inspect(t.Pred, f)
	case *GetStmt:
		Inspect(t.Domain, f)
	case *SpecStmt:
		Inspect(t.Domain, f)
		Inspect(t.Pred, f)
	case *IfStmt:
		Inspect(t.Cond, f)
		for _, s := range t.Then {
			Inspect(s, f)
		}
		for _, s := range t.Else {
			Inspect(s, f)
		}
	case *BlockStmt:
		for _, s := range t.Body {
			Inspect(s, f)
		}
	case *Pipe:
		Inspect(t.Src, f)
		for _, s := range t.Steps {
			if s.Guard != nil {
				Inspect(s.Guard, f)
			}
			for _, a := range s.T.Args {
				Inspect(a, f)
			}
		}
	case *BinaryDomain:
		Inspect(t.L, f)
		Inspect(t.R, f)
	case *CompartmentDomain:
		Inspect(t.Inner, f)
	case *And:
		Inspect(t.L, f)
		Inspect(t.R, f)
	case *Or:
		Inspect(t.L, f)
		Inspect(t.R, f)
	case *Not:
		Inspect(t.X, f)
	case *QuantPred:
		Inspect(t.X, f)
	case *IfPred:
		Inspect(t.Cond, f)
		Inspect(t.Then, f)
		if t.Else != nil {
			Inspect(t.Else, f)
		}
	case *Range:
		Inspect(t.Lo, f)
		Inspect(t.Hi, f)
	case *Enum:
		for _, e := range t.Elems {
			Inspect(e, f)
		}
	case *Rel:
		Inspect(t.Rhs, f)
	case *Call:
		for _, a := range t.Args {
			Inspect(a, f)
		}
	case *DomainExpr:
		Inspect(t.D, f)
	}
}

// ---- Rendering ----

// Render reconstructs approximate CPL source for a statement; used in
// reports and by the inference engine's generated specifications.
func Render(n Node) string {
	var b strings.Builder
	render(n, &b)
	return b.String()
}

func render(n Node, b *strings.Builder) {
	switch t := n.(type) {
	case *LoadStmt:
		b.WriteString("load '" + t.Driver + "' '" + t.Source + "'")
		if t.Scope != "" {
			b.WriteString(" as " + t.Scope)
		}
	case *IncludeStmt:
		b.WriteString("include '" + t.Path + "'")
	case *LetStmt:
		b.WriteString("let " + t.Name + " := ")
		render(t.Pred, b)
	case *PolicyStmt:
		b.WriteString("policy " + t.Name + " '" + t.Value + "'")
	case *GetStmt:
		b.WriteString("get ")
		render(t.Domain, b)
	case *SpecStmt:
		if t.Quant != QuantAll {
			b.WriteString(t.Quant.String() + " ")
		}
		render(t.Domain, b)
		b.WriteString(" -> ")
		render(t.Pred, b)
		if t.Message != "" {
			b.WriteString(" message '" + t.Message + "'")
		}
	case *IfStmt:
		b.WriteString("if (")
		render(t.Cond, b)
		b.WriteString(") { ... }")
		if t.Else != nil {
			b.WriteString(" else { ... }")
		}
	case *BlockStmt:
		if t.Kind == BlockNamespace {
			b.WriteString("namespace ")
		} else {
			b.WriteString("compartment ")
		}
		b.WriteString(t.Scope.String() + " { ... }")
	case *Ref:
		b.WriteString("$" + t.Pattern.String())
	case *PipeVar:
		b.WriteString("$_")
	case *Pipe:
		render(t.Src, b)
		for _, s := range t.Steps {
			b.WriteString(" -> ")
			if s.Guard != nil {
				b.WriteString("if (")
				render(s.Guard, b)
				b.WriteString(") ")
			}
			renderTransform(s.T, b)
		}
	case *BinaryDomain:
		render(t.L, b)
		b.WriteString(" " + t.Op.String() + " ")
		render(t.R, b)
	case *CompartmentDomain:
		b.WriteString("#[" + t.Scope.String() + "] ")
		render(t.Inner, b)
		b.WriteString("#")
	case *And:
		render(t.L, b)
		b.WriteString(" & ")
		render(t.R, b)
	case *Or:
		render(t.L, b)
		b.WriteString(" | ")
		render(t.R, b)
	case *Not:
		b.WriteString("~")
		render(t.X, b)
	case *QuantPred:
		b.WriteString(t.Q.String() + " ")
		render(t.X, b)
	case *IfPred:
		b.WriteString("if (")
		render(t.Cond, b)
		b.WriteString(") ")
		render(t.Then, b)
		if t.Else != nil {
			b.WriteString(" else ")
			render(t.Else, b)
		}
	case *TypePred:
		b.WriteString(t.T.String())
	case *Prim:
		b.WriteString(t.Name)
	case *Match:
		b.WriteString("match('" + t.Pattern + "')")
	case *Range:
		b.WriteString("[")
		render(t.Lo, b)
		b.WriteString(", ")
		render(t.Hi, b)
		b.WriteString("]")
	case *Enum:
		b.WriteString("{")
		for i, e := range t.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			render(e, b)
		}
		b.WriteString("}")
	case *Rel:
		b.WriteString(t.Op.String() + " ")
		render(t.Rhs, b)
	case *MacroRef:
		b.WriteString("@" + t.Name)
	case *Call:
		b.WriteString(t.Name + "(")
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			render(a, b)
		}
		b.WriteString(")")
	case *Lit:
		if t.Kind == token.STRING {
			b.WriteString("'" + t.Text + "'")
		} else {
			b.WriteString(t.Text)
		}
	case *DomainExpr:
		render(t.D, b)
	}
}

func renderTransform(t *Transform, b *strings.Builder) {
	if t.Name == "tuple" {
		b.WriteString("[")
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			render(a, b)
		}
		b.WriteString("]")
		return
	}
	b.WriteString(t.Name + "(")
	for i, a := range t.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		render(a, b)
	}
	b.WriteString(")")
}
