// Package token defines the lexical tokens of CPL, ConfValley's
// configuration predicate language (§4.2 of the paper).
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. CPL accepts both ASCII spellings (->, <=, all, exists) and
// the paper's mathematical notation (→, ≤, ∀, ∃).
const (
	EOF Kind = iota
	NEWLINE

	IDENT  // MonitorNodeHealth, *IP, a_b2
	INT    // 42, 0x1F
	FLOAT  // 3.14
	STRING // 'single' or "double" quoted

	DOLLAR // $
	AT     // @
	HASH   // #

	ARROW  // -> or →
	ASSIGN // :=
	DCOLON // ::
	DOT    // .
	COMMA  // ,

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }

	AMP   // &
	PIPE  // |
	TILDE // ~

	EQ  // ==
	NEQ // != or ≠
	LE  // <= or ≤
	GE  // >= or ≥
	LT  // <
	GT  // >

	PLUS  // +
	MINUS // -
	STAR  // * (standalone: multiplication; inside a word: wildcard)
	SLASH // /

	// Keywords.
	IF
	ELSE
	NAMESPACE
	COMPARTMENT
	LET
	LOAD
	INCLUDE
	GET
	POLICY
	AS
	ALL    // ∀ quantifier
	EXISTS // ∃ quantifier (also the path-existence predicate, by position)
	ONE    // ∃! quantifier
)

var kindNames = map[Kind]string{
	EOF: "EOF", NEWLINE: "newline",
	IDENT: "identifier", INT: "integer", FLOAT: "float", STRING: "string",
	DOLLAR: "$", AT: "@", HASH: "#",
	ARROW: "->", ASSIGN: ":=", DCOLON: "::", DOT: ".", COMMA: ",",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{", RBRACE: "}",
	AMP: "&", PIPE: "|", TILDE: "~",
	EQ: "==", NEQ: "!=", LE: "<=", GE: ">=", LT: "<", GT: ">",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	IF: "if", ELSE: "else", NAMESPACE: "namespace", COMPARTMENT: "compartment",
	LET: "let", LOAD: "load", INCLUDE: "include", GET: "get", POLICY: "policy",
	AS: "as", ALL: "all", EXISTS: "exists", ONE: "one",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"if": IF, "else": ELSE,
	"namespace": NAMESPACE, "compartment": COMPARTMENT,
	"let": LET, "load": LOAD, "include": INCLUDE, "get": GET, "policy": POLICY,
	"as": AS, "all": ALL, "exists": EXISTS, "one": ONE,
}

// Pos locates a token in its source file.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // raw text; for STRING, the unquoted content
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT:
		return fmt.Sprintf("%q", t.Text)
	case STRING:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Kind.String()
	}
}

// IsRelOp reports whether the kind is a relational operator.
func (k Kind) IsRelOp() bool {
	switch k {
	case EQ, NEQ, LE, GE, LT, GT:
		return true
	}
	return false
}

// IsBinOp reports whether the kind is an arithmetic binary operator usable
// between domains.
func (k Kind) IsBinOp() bool {
	switch k {
	case PLUS, MINUS, STAR, SLASH:
		return true
	}
	return false
}

// IsQuantifier reports whether the kind is a quantifier keyword.
func (k Kind) IsQuantifier() bool { return k == ALL || k == EXISTS || k == ONE }
