package lexer

import (
	"math/rand"
	"strings"
	"testing"

	"confvalley/internal/cpl/token"
)

// Robustness: the lexer must never panic and must always terminate, for
// arbitrary byte soup. Errors are fine; crashes are not.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("abc$->:=&|~()[]{}#@'\"0123456789 \n\t\\*.<>=!∃∀→≤")
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panicked on %q: %v", b, r)
				}
			}()
			toks, err := Tokenize(string(b))
			if err == nil && (len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF) {
				t.Fatalf("tokenize of %q did not end with EOF", b)
			}
		}()
	}
}

// Robustness: invalid UTF-8 and control characters error or tokenize,
// never hang.
func TestLexerBinaryInput(t *testing.T) {
	inputs := []string{
		"\x00\x01\x02",
		"\xff\xfe",
		strings.Repeat("\x80", 100),
		"a\x00b",
	}
	for _, in := range inputs {
		if _, err := Tokenize(in); err == nil {
			t.Errorf("binary input %q should error", in)
		}
	}
}

// Property: tokenizing the same input twice yields identical tokens.
func TestLexerDeterministic(t *testing.T) {
	src := "$Fabric.X -> int & [5,15] | @Macro // c\ncompartment C { $a <= $b }"
	a, err1 := Tokenize(src)
	b, err2 := Tokenize(src)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
