package lexer

import (
	"testing"

	"confvalley/internal/cpl/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func eqKinds(a []token.Kind, b ...token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, "$OSBuildPath -> path & exists")
	if !eqKinds(got, token.DOLLAR, token.IDENT, token.ARROW, token.IDENT, token.AMP, token.EXISTS, token.EOF) {
		t.Errorf("kinds = %v", got)
	}
}

func TestOperatorsAndBrackets(t *testing.T) {
	got := kinds(t, "~a | (b & c) == != <= >= < > [1,2] {x} @m")
	want := []token.Kind{
		token.TILDE, token.IDENT, token.PIPE, token.LPAREN, token.IDENT, token.AMP,
		token.IDENT, token.RPAREN, token.EQ, token.NEQ, token.LE, token.GE,
		token.LT, token.GT, token.LBRACK, token.INT, token.COMMA, token.INT,
		token.RBRACK, token.LBRACE, token.IDENT, token.RBRACE, token.AT,
		token.IDENT, token.EOF,
	}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}

func TestUnicodeSpellings(t *testing.T) {
	a := kinds(t, "$X → int & [5,15]")
	b := kinds(t, "$X -> int & [5,15]")
	if !eqKinds(a, b...) {
		t.Errorf("unicode arrow differs: %v vs %v", a, b)
	}
	got := kinds(t, "∀ x ∃ y ∃! z ≤ ≥ ≠")
	want := []token.Kind{token.ALL, token.IDENT, token.EXISTS, token.IDENT,
		token.ONE, token.IDENT, token.LE, token.GE, token.NEQ, token.EOF}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}

func TestWildcardWords(t *testing.T) {
	toks, err := Tokenize("*IP *.SecretKey a*b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.IDENT || toks[0].Text != "*IP" {
		t.Errorf("tok0 = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != token.STAR {
		t.Errorf("lone star before dot = %v", toks[1].Kind)
	}
	if toks[2].Kind != token.DOT {
		t.Errorf("dot = %v", toks[2].Kind)
	}
	if toks[4].Kind != token.IDENT || toks[4].Text != "a*b" {
		t.Errorf("infix wildcard = %v %q", toks[4].Kind, toks[4].Text)
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks, err := Tokenize(`'single' "double" 'a\'b' 'x\ny'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"single", "double", "a'b", "x\ny"}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Text != w {
			t.Errorf("tok%d = %v %q, want STRING %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestStringErrors(t *testing.T) {
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Tokenize("'bad\nline'"); err == nil {
		t.Error("newline in string should error")
	}
	if _, err := Tokenize(`'bad \q escape'`); err == nil {
		t.Error("unknown escape should error")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("42 3.14 0xFF 2X")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.INT || toks[0].Text != "42" {
		t.Errorf("int: %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != token.FLOAT || toks[1].Text != "3.14" {
		t.Errorf("float: %v %q", toks[1].Kind, toks[1].Text)
	}
	if toks[2].Kind != token.INT || toks[2].Text != "0xFF" {
		t.Errorf("hex: %v %q", toks[2].Kind, toks[2].Text)
	}
	if toks[3].Kind != token.IDENT || toks[3].Text != "2X" {
		t.Errorf("digit-leading ident: %v %q", toks[3].Kind, toks[3].Text)
	}
}

func TestIntDotIdentIsNotFloat(t *testing.T) {
	got := kinds(t, "Fabric[1].Key")
	want := []token.Kind{token.IDENT, token.LBRACK, token.INT, token.RBRACK,
		token.DOT, token.IDENT, token.EOF}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []token.Kind{token.IDENT, token.NEWLINE, token.IDENT, token.IDENT, token.EOF}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}

func TestNewlineCollapsing(t *testing.T) {
	got := kinds(t, "a\n\n\nb")
	want := []token.Kind{token.IDENT, token.NEWLINE, token.IDENT, token.EOF}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}

func TestKeywords(t *testing.T) {
	got := kinds(t, "if else namespace compartment let load include get policy as all exists one")
	want := []token.Kind{token.IF, token.ELSE, token.NAMESPACE, token.COMPARTMENT,
		token.LET, token.LOAD, token.INCLUDE, token.GET, token.POLICY, token.AS,
		token.ALL, token.EXISTS, token.ONE, token.EOF}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}

func TestPunctErrors(t *testing.T) {
	for _, bad := range []string{"a = b", "a ! b", "a : b", "a ^ b"} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("input %q should error", bad)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("tok0 pos = %v", toks[0].Pos)
	}
	if toks[2].Pos.Line != 2 || toks[2].Pos.Col != 3 {
		t.Errorf("cd pos = %v", toks[2].Pos)
	}
}

func TestAssignAndDoubleColon(t *testing.T) {
	got := kinds(t, "let U := unique & ip\n$Fabric::inst1.K")
	want := []token.Kind{token.LET, token.IDENT, token.ASSIGN, token.IDENT,
		token.AMP, token.IDENT, token.NEWLINE, token.DOLLAR, token.IDENT,
		token.DCOLON, token.IDENT, token.DOT, token.IDENT, token.EOF}
	if !eqKinds(got, want...) {
		t.Errorf("kinds = %v", got)
	}
}
