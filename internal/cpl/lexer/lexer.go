// Package lexer implements the hand-rolled scanner for CPL. The original
// system used ANTLR; this implementation is a small single-pass scanner
// with no dependencies beyond the standard library.
package lexer

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"confvalley/internal/cpl/token"
)

// Lexer scans CPL source text into tokens.
type Lexer struct {
	src  string
	off  int // current byte offset
	line int
	col  int
}

// New returns a lexer over the source text.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cpl:%s: %s", e.Pos, e.Msg) }

// Tokenize scans the whole input, returning all tokens ending with EOF.
// Consecutive newlines are collapsed into one NEWLINE token.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var out []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == token.NEWLINE && len(out) > 0 && out[len(out)-1].Kind == token.NEWLINE {
			continue
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += size
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col += size
	}
	return r
}

// Next returns the next token.
func (lx *Lexer) Next() (token.Token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	r := lx.peek()
	switch {
	case r == '\n':
		lx.advance()
		return token.Token{Kind: token.NEWLINE, Pos: pos}, nil
	case r == '\'' || r == '"':
		return lx.scanString(pos)
	case isDigit(r):
		return lx.scanNumber(pos)
	case isWordRune(r):
		return lx.scanWord(pos)
	}
	return lx.scanOperator(pos)
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r':
			lx.advance()
		case r == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

func (lx *Lexer) scanString(pos token.Pos) (token.Token, error) {
	quote := lx.advance()
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) || lx.peek() == '\n' {
			return token.Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
		}
		r := lx.advance()
		if r == quote {
			return token.Token{Kind: token.STRING, Text: b.String(), Pos: pos}, nil
		}
		if r == '\\' && lx.off < len(lx.src) {
			esc := lx.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'', '"':
				b.WriteRune(esc)
			default:
				return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
			}
			continue
		}
		b.WriteRune(r)
	}
}

func (lx *Lexer) scanNumber(pos token.Pos) (token.Token, error) {
	start := lx.off
	kind := token.INT
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHex(byte(lx.peek())) {
			lx.advance()
		}
		return token.Token{Kind: token.INT, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	// A dot starts a fraction only when followed by a digit; otherwise it
	// is the qid separator (e.g. Cloud[1].Key after an INT in brackets is
	// impossible, but "1.5" vs "a.1" must disambiguate).
	if lx.peek() == '.' && isDigit(rune(lx.peekAt(1))) {
		kind = token.FLOAT
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	// Numbers directly followed by word characters are identifiers that
	// begin with digits (e.g. a key named "2X"): extend into a word.
	if lx.off < len(lx.src) && isWordRune(lx.peek()) && kind == token.INT {
		for lx.off < len(lx.src) && isWordRune(lx.peek()) {
			lx.advance()
		}
		return token.Token{Kind: token.IDENT, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	return token.Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}, nil
}

func (lx *Lexer) scanWord(pos token.Pos) (token.Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && isWordRune(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if text == "*" {
		// A lone star: wildcard identifier when followed by '.' or '::'
		// or end of a qid; multiplication operator otherwise. The parser
		// distinguishes by context; emit STAR and let it decide — except
		// the common "*.Key" and "*IP" forms are already merged above.
		return token.Token{Kind: token.STAR, Text: "*", Pos: pos}, nil
	}
	if kw, ok := token.Keywords[text]; ok {
		return token.Token{Kind: kw, Text: text, Pos: pos}, nil
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: pos}, nil
}

func (lx *Lexer) scanOperator(pos token.Pos) (token.Token, error) {
	r := lx.advance()
	two := func(next byte, yes, no token.Kind) token.Token {
		if lx.off < len(lx.src) && lx.src[lx.off] == next {
			lx.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}
	switch r {
	case '$':
		return token.Token{Kind: token.DOLLAR, Pos: pos}, nil
	case '@':
		return token.Token{Kind: token.AT, Pos: pos}, nil
	case '#':
		return token.Token{Kind: token.HASH, Pos: pos}, nil
	case '-':
		return two('>', token.ARROW, token.MINUS), nil
	case ':':
		if lx.off < len(lx.src) {
			switch lx.src[lx.off] {
			case '=':
				lx.advance()
				return token.Token{Kind: token.ASSIGN, Pos: pos}, nil
			case ':':
				lx.advance()
				return token.Token{Kind: token.DCOLON, Pos: pos}, nil
			}
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected ':' (did you mean '::' or ':=' ?)"}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}, nil
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}, nil
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}, nil
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}, nil
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}, nil
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}, nil
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}, nil
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}, nil
	case '&':
		return token.Token{Kind: token.AMP, Pos: pos}, nil
	case '|':
		return token.Token{Kind: token.PIPE, Pos: pos}, nil
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}, nil
	case '=':
		if lx.off < len(lx.src) && lx.src[lx.off] == '=' {
			lx.advance()
			return token.Token{Kind: token.EQ, Pos: pos}, nil
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected '=' (comparison is '==')"}
	case '!':
		if lx.off < len(lx.src) && lx.src[lx.off] == '=' {
			lx.advance()
			return token.Token{Kind: token.NEQ, Pos: pos}, nil
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected '!'"}
	case '<':
		return two('=', token.LE, token.LT), nil
	case '>':
		return two('=', token.GE, token.GT), nil
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}, nil
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}, nil
	// Mathematical spellings used in the paper.
	case '→':
		return token.Token{Kind: token.ARROW, Pos: pos}, nil
	case '≤':
		return token.Token{Kind: token.LE, Pos: pos}, nil
	case '≥':
		return token.Token{Kind: token.GE, Pos: pos}, nil
	case '≠':
		return token.Token{Kind: token.NEQ, Pos: pos}, nil
	case '∀':
		return token.Token{Kind: token.ALL, Text: "all", Pos: pos}, nil
	case '∃':
		if lx.peek() == '!' {
			lx.advance()
			return token.Token{Kind: token.ONE, Text: "one", Pos: pos}, nil
		}
		return token.Token{Kind: token.EXISTS, Text: "exists", Pos: pos}, nil
	case '¬':
		return token.Token{Kind: token.TILDE, Pos: pos}, nil
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", r)}
}

// isWordRune reports whether r can appear inside a CPL word. '*' is a
// wildcard inside configuration names ("*IP") and '_' appears in names and
// in the pipeline variable "$_".
func isWordRune(r rune) bool {
	return r == '_' || r == '*' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || isDigit(r)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
