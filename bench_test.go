package confvalley_test

// Benchmarks regenerating each table and figure of the paper's evaluation
// (§6). Each benchmark exercises the code path behind one artifact at a
// test-friendly scale; cmd/cvbench runs the same experiments and prints
// the paper-style rows (add -full for paper-scale corpora). See
// EXPERIMENTS.md for the experiment index and paper-vs-measured values.

import (
	"io"
	"testing"

	confvalley "confvalley"

	"confvalley/internal/azuregen"
	"confvalley/internal/compiler"
	"confvalley/internal/config"
	"confvalley/internal/cpl/parser"
	"confvalley/internal/driver"
	"confvalley/internal/engine"
	"confvalley/internal/experiments"
	"confvalley/internal/infer"
	"confvalley/internal/legacy"
	"confvalley/internal/plan"
	"confvalley/internal/simenv"
	"confvalley/specs"
)

func benchConfig() experiments.Config {
	cfg := experiments.Quick(io.Discard)
	cfg.ScaleA = 0.05
	cfg.ScaleB = 0.002
	return cfg
}

// BenchmarkTable2DriverParsing stands behind Table 2: the drivers whose
// sizes the table reports, parsing a Type A snapshot in each format.
func BenchmarkTable2DriverParsing(b *testing.B) {
	corpus := azuregen.GenerateA(0.05, 2015)
	inputs := []struct {
		format string
		data   []byte
	}{
		{"xml", azuregen.RenderXML(corpus.Store)},
		{"kv", azuregen.RenderKV(corpus.Store)},
		{"ini", azuregen.RenderINI(corpus.Store)},
	}
	for _, in := range inputs {
		b.Run(in.format, func(b *testing.B) {
			b.SetBytes(int64(len(in.data)))
			for i := 0; i < b.N; i++ {
				st := config.NewStore()
				if _, err := driver.LoadInto(st, in.format, in.data, "bench", ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3RewriteAzure stands behind Table 3: the CPL suites
// versus their imperative counterparts, on the same data. The interesting
// number besides LoC (reported by cvbench) is that the declarative form
// costs no more to run.
func BenchmarkTable3RewriteAzure(b *testing.B) {
	st := config.NewStore()
	azuregen.AddExpertSubstrate(st, 40, 2015)
	env := azuregen.ExpertEnv()
	prog, err := compiler.Compile(specs.AzureTypeA())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cpl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: st, Env: env}
			if rep := eng.Run(prog); !rep.Passed() {
				b.Fatal("unexpected violations")
			}
		}
	})
	b.Run("imperative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if errs := legacy.ValidateTypeA(st, env); len(errs.Violations) != 0 {
				b.Fatal("unexpected violations")
			}
		}
	})
}

// BenchmarkTable4RewriteOpenSource stands behind Table 4.
func BenchmarkTable4RewriteOpenSource(b *testing.B) {
	osStore := config.NewStore()
	if _, err := driver.LoadInto(osStore, "yaml", specs.OpenStackConfig(), "o.yaml", ""); err != nil {
		b.Fatal(err)
	}
	prog, err := compiler.Compile(specs.OpenStack())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("openstack-cpl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: osStore, Env: simenv.NewSim()}
			eng.Run(prog)
		}
	})
	b.Run("openstack-imperative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			legacy.ValidateOpenStack(osStore)
		}
	})
}

// BenchmarkTable5Inference stands behind Table 5: constraint mining over
// each corpus type.
func BenchmarkTable5Inference(b *testing.B) {
	corpora := map[string]*azuregen.Corpus{
		"TypeA": azuregen.GenerateA(0.05, 2015),
		"TypeB": azuregen.GenerateB(0.002, 2015),
		"TypeC": azuregen.GenerateC(1.0, 2015),
	}
	for name, c := range corpora {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := infer.Infer(c.Store, infer.Defaults())
				if len(res.Constraints) == 0 {
					b.Fatal("inference found nothing")
				}
			}
		})
	}
}

// BenchmarkFigure5Histogram stands behind Figure 5.
func BenchmarkFigure5Histogram(b *testing.B) {
	c := azuregen.GenerateA(0.05, 2015)
	res := infer.Infer(c.Store, infer.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := res.Histogram(4)
		if len(h) != 5 {
			b.Fatal("bad histogram")
		}
	}
}

// BenchmarkTable6ExpertValidation stands behind Table 6: the expert suite
// over an error-injected branch.
func BenchmarkTable6ExpertValidation(b *testing.B) {
	st := config.NewStore()
	azuregen.AddExpertSubstrate(st, 40, 2015)
	azuregen.InjectExpertErrors(st, 40, 4, 77)
	env := azuregen.ExpertEnv()
	prog, err := compiler.Compile(specs.AzureTypeA())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.Engine{Store: st, Env: env}
		rep := eng.Run(prog)
		if rep.Passed() {
			b.Fatal("injected errors not caught")
		}
	}
}

// BenchmarkTable7InferredValidation stands behind Table 7: inferred
// specifications over an error-injected branch.
func BenchmarkTable7InferredValidation(b *testing.B) {
	good, branches := azuregen.GenerateBranches(0.05, 2015, []azuregen.BranchSetup{
		{Name: "Trunk", ExpertErrors: 0, TrueInferred: 5, BenignDrifts: 2},
	})
	res := infer.Infer(good.Store, infer.Defaults())
	prog, err := compiler.Compile(res.GenerateCPL())
	if err != nil {
		b.Fatal(err)
	}
	br := branches[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.Engine{Store: br.Store, Env: azuregen.ExpertEnv()}
		rep := eng.Run(prog)
		if rep.Passed() {
			b.Fatal("injected errors not caught")
		}
	}
}

// BenchmarkTable8Validation stands behind Table 8: sequential versus
// partitioned validation.
func BenchmarkTable8Validation(b *testing.B) {
	c := azuregen.GenerateA(0.05, 2015)
	res := infer.Infer(c.Store, infer.Defaults())
	prog, err := compiler.Compile(res.GenerateCPL())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: c.Store, Env: simenv.NewSim()}
			eng.Run(prog)
		}
	})
	b.Run("parallel10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: c.Store, Env: simenv.NewSim(), Opts: engine.Options{Parallel: 10}}
			eng.Run(prog)
		}
	})
}

// BenchmarkTable9Inference stands behind Table 9: parse-to-unified versus
// mining time.
func BenchmarkTable9Inference(b *testing.B) {
	data := azuregen.RenderKV(azuregen.GenerateB(0.002, 2015).Store)
	b.Run("parsing", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			st := config.NewStore()
			if _, err := driver.LoadInto(st, "kv", data, "b.kv", ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := config.NewStore()
	if _, err := driver.LoadInto(st, "kv", data, "b.kv", ""); err != nil {
		b.Fatal(err)
	}
	b.Run("inference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			infer.Infer(st, infer.Defaults())
		}
	})
}

// BenchmarkFigure4Optimizations stands behind the Figure 4 ablation:
// validating the redundant one-constraint-per-statement suite with and
// without the compiler rewrites.
func BenchmarkFigure4Optimizations(b *testing.B) {
	c := azuregen.GenerateA(0.05, 2015)
	res := infer.Infer(c.Store, infer.Defaults())
	src := res.GenerateVerboseCPL()
	raw, err := compiler.CompileWith(src, compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opt, err := compiler.CompileWith(src, compiler.Options{Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unoptimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: c.Store, Env: simenv.NewSim()}
			eng.Run(raw)
		}
	})
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: c.Store, Env: simenv.NewSim()}
			eng.Run(opt)
		}
	})
}

// BenchmarkDiscoveryNaiveVsTrie stands behind the §5.2 discovery
// optimization claim (5x–40x).
func BenchmarkDiscoveryNaiveVsTrie(b *testing.B) {
	c := azuregen.GenerateA(0.05, 2015)
	pats := []config.Pattern{
		config.P("Cluster", "Fabric", "*"),
		config.P("*Timeout*"),
		config.P("Cluster::east1-c000", "Fabric", "*"),
	}
	b.Run("trie+cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pats {
				c.Store.Discover(p)
			}
		}
	})
	b.Run("trie-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Store.InvalidateCache()
			for _, p := range pats {
				c.Store.Discover(p)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pats {
				c.Store.DiscoverNaive(p)
			}
		}
	})
}

// BenchmarkPlanExecution measures the executable-plan layer on the
// inferred Type A workload: direct AST interpretation, a cold plan
// (lowering cost included — the cache entry is evicted before each
// run), and the cached plan.
func BenchmarkPlanExecution(b *testing.B) {
	c := azuregen.GenerateA(0.05, 2015)
	res := infer.Infer(c.Store, infer.Defaults())
	prog, err := compiler.Compile(res.GenerateCPL())
	if err != nil {
		b.Fatal(err)
	}
	run := func(interpret bool) {
		eng := engine.Engine{Store: c.Store, Env: simenv.NewSim(), Opts: engine.Options{Interpret: interpret}}
		eng.Run(prog)
	}
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(true)
		}
	})
	b.Run("plan-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Forget(prog)
			run(false)
		}
	})
	b.Run("plan-cached", func(b *testing.B) {
		run(false) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(false)
		}
	})
	plan.Forget(prog)
}

// BenchmarkCompartmentVsCartesian measures compartment-scoped pairing,
// the design choice DESIGN.md calls out for ablation.
func BenchmarkCompartmentVsCartesian(b *testing.B) {
	st := config.NewStore()
	azuregen.AddExpertSubstrate(st, 40, 2015)
	comp, err := compiler.Compile("compartment Cluster { $VipStart <= $VipEnd }")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compartment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.Engine{Store: st, Env: simenv.NewSim()}
			if rep := eng.Run(comp); !rep.Passed() {
				b.Fatal("clean substrate flagged")
			}
		}
	})
}

// BenchmarkCPLParser measures the hand-rolled front end.
func BenchmarkCPLParser(b *testing.B) {
	src := specs.AzureTypeA() + specs.AzureTypeB() + specs.OpenStack()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSession measures the full public-API flow the
// quickstart example takes.
func BenchmarkEndToEndSession(b *testing.B) {
	data := azuregen.RenderINI(azuregen.GenerateC(1.0, 2015).Store)
	for i := 0; i < b.N; i++ {
		s := confvalley.NewSession()
		if _, err := s.LoadData("ini", data, "c.ini", ""); err != nil {
			b.Fatal(err)
		}
		rep, err := s.Validate(specs.AzureTypeC())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatal("clean corpus flagged")
		}
	}
}

// TestExperimentsSmoke runs every cvbench experiment once at reduced
// scale, asserting the qualitative shapes the paper reports.
func TestExperimentsSmoke(t *testing.T) {
	cfg := benchConfig()

	t3 := experiments.Table3(cfg)
	for _, r := range t3 {
		if r.CPLLoC*3 > r.OrigLoC {
			t.Errorf("Table 3 %s: CPL %d vs orig %d — expected ≥3x reduction", r.Name, r.CPLLoC, r.OrigLoC)
		}
		if r.Inferable <= 0 || r.Inferable > r.SpecCount {
			t.Errorf("Table 3 %s: inferable %d of %d", r.Name, r.Inferable, r.SpecCount)
		}
	}
	t4 := experiments.Table4(cfg)
	for _, r := range t4 {
		if r.CPLLoC*3 > r.OrigLoC {
			t.Errorf("Table 4 %s: CPL %d vs orig %d", r.Name, r.CPLLoC, r.OrigLoC)
		}
	}

	t5 := experiments.Table5(cfg)
	if len(t5) != 3 || t5[0].Total == 0 {
		t.Fatalf("Table 5 rows = %+v", t5)
	}

	h := experiments.Figure5(cfg)
	sum := 0
	for _, n := range h {
		sum += n
	}
	if sum == 0 || h[0] == 0 {
		t.Errorf("Figure 5 histogram = %v", h)
	}

	// The branch experiment needs enough classes per archetype to host
	// all injections; use the standard quick scale (0.1) rather than the
	// benchmark scale.
	t6, t7 := experiments.BranchExperiment(experiments.Quick(io.Discard))
	wantT6 := []int{4, 2, 2}
	wantT7 := []int{12, 15, 16}
	wantFP := []int{3, 5, 3}
	for i := range t6 {
		if t6[i].Reported != wantT6[i] || t6[i].FalsePositives != 0 {
			t.Errorf("Table 6 %s: reported %d (want %d), FP %d (want 0)",
				t6[i].Branch, t6[i].Reported, wantT6[i], t6[i].FalsePositives)
		}
		if t7[i].Reported != wantT7[i] || t7[i].FalsePositives != wantFP[i] {
			t.Errorf("Table 7 %s: reported %d (want %d), FP %d (want %d)",
				t7[i].Branch, t7[i].Reported, wantT7[i], t7[i].FalsePositives, wantFP[i])
		}
		if t7[i].Unattributed != 0 {
			t.Errorf("Table 7 %s: %d unattributed violations", t7[i].Branch, t7[i].Unattributed)
		}
	}

	t8 := experiments.Table8(cfg)
	if len(t8) != 3 {
		t.Fatalf("Table 8 rows = %d", len(t8))
	}
	for _, r := range t8 {
		// P10 max should not exceed sequential by more than scheduling
		// noise (tiny workloads jitter on loaded machines).
		if r.P10Max > r.Sequential*2 {
			t.Errorf("Table 8 %s: P10 max %v exceeds sequential %v", r.Name, r.P10Max, r.Sequential)
		}
	}

	t9 := experiments.Table9(cfg)
	for _, r := range t9 {
		if r.Parsing < r.Inference/20 {
			t.Errorf("Table 9 %s: parsing %v implausibly small vs inference %v", r.Name, r.Parsing, r.Inference)
		}
	}

	f4 := experiments.Figure4(cfg)
	if f4.SpecsOptimized >= f4.SpecsRaw {
		t.Errorf("Figure 4: optimization did not reduce specs (%d vs %d)", f4.SpecsOptimized, f4.SpecsRaw)
	}
	if f4.QueriesOptimized > f4.QueriesRaw {
		t.Errorf("Figure 4: optimization increased queries (%d vs %d)", f4.QueriesOptimized, f4.QueriesRaw)
	}

	acc := experiments.InferenceAccuracy(experiments.Quick(io.Discard))
	if p := acc.Precision(); p < 0.80 || p > 0.99 {
		t.Errorf("inference precision = %.2f; want the paper's imperfect-but-high band", p)
	}
	if acc.ByKind["Range"][1] == 0 && acc.ByKind["Uniqueness"][1] == 0 {
		t.Error("trap archetypes produced no inaccuracies; the §6.3 experiment is vacuous")
	}

	d := experiments.Discovery(cfg)
	if d.Speedup < 2 {
		t.Errorf("discovery speedup = %.1fx, want ≥2x (paper: 5x–40x)", d.Speedup)
	}

	pa := experiments.PlanAblation(cfg)
	if pa.SpeedupCached < 2 {
		t.Errorf("cached-plan speedup = %.1fx over AST interpretation, want ≥2x", pa.SpeedupCached)
	}
	if pa.PlanCold > pa.PlanCached*3 {
		t.Errorf("cold plan %v is implausibly slower than cached %v; lowering cost regressed", pa.PlanCold, pa.PlanCached)
	}

	t2 := experiments.Table2(cfg)
	if len(t2) < 6 {
		t.Errorf("Table 2 rows = %d", len(t2))
	}
	for _, r := range t2 {
		if r.LoC < 10 {
			t.Errorf("Table 2 %s: %d LoC implausible", r.Format, r.LoC)
		}
	}
}
