// Command cvserve runs ConfValley as a long-lived multi-tenant
// validation service — the deployment shape of §5: teams register CPL
// specification programs once and submit configuration payloads for
// validation over HTTP, instead of shipping files to a CLI.
//
// Usage:
//
//	cvserve [-addr 127.0.0.1:7077] [-parallel N]
//	        [-state-dir DIR] [-compact-every N]
//	        [-max-stale N] [-load-timeout 5s]
//	        [-max-concurrent N] [-max-queue N] [-queue-wait 10s]
//	        [-snapshot-cache N] [-result-cache N] [-no-incremental]
//	        [-max-tenants N] [-max-specs N] [-max-spec-bytes N]
//	        [-max-sources N] [-max-payload-bytes N] [-version]
//
// Endpoints (all JSON; see internal/serve for the wire types):
//
//	GET    /healthz                                         liveness + version
//	GET    /readyz                                          readiness (503 until
//	                                                        recovery completes,
//	                                                        and while draining)
//	GET    /statsz                                          service counters
//	PUT    /v1/tenants/{tenant}/specs/{spec}                register CPL (body = source)
//	GET    /v1/tenants/{tenant}/specs                       list specs
//	DELETE /v1/tenants/{tenant}/specs/{spec}                delete spec
//	POST   /v1/tenants/{tenant}/specs/{spec}/validate       run a validation
//	GET    /v1/tenants/{tenant}/specs/{spec}/report         last report
//
// Each tenant gets its own runner — session, store lineage, loader and
// plan state — so tenants are isolated structurally, not by locking.
// Admission control bounds concurrent validations; excess requests wait
// in a bounded queue and overflow is rejected with 429.
//
// Three cache layers, all on by default, serve the hot path: a
// per-tenant result cache with request coalescing (repeat payloads
// return the cached response without consuming a validation slot), a
// content-addressed snapshot cache (matching payload bytes skip
// parsing), and cross-request incremental validation (a low-churn
// request re-runs only the specs its payload delta touches). Disable
// with -result-cache -1, -snapshot-cache -1, and -no-incremental;
// /healthz and /statsz expose per-tenant hit/miss/reuse counters.
//
// With -state-dir, registrations and deletions are journaled (fsync'd
// before the 201) to the directory and replayed on startup, so a crash
// or restart loses no registered spec; /readyz answers 503 until the
// replay completes, so load balancers never route to a server that has
// not rehydrated its registries. Without it, state is in-memory as
// before. The journal folds into a snapshot every -compact-every
// appends (negative disables compaction).
//
// cvserve exits 0 on clean shutdown (SIGINT/SIGTERM), 2 on usage,
// listen, or state-recovery errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"confvalley"
	"confvalley/internal/runner"
	"confvalley/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:7077", "listen address (host:port; port 0 picks a free port)")
		parallel    = fs.Int("parallel", 1, "validate each request's specifications in N parallel partitions")
		maxStale    = fs.Int("max-stale", 0, "serve a failing source from its last good parse for at most N requests (0 = forever, negative = never)")
		loadTimeout = fs.Duration("load-timeout", 0, "bound each validation (loading plus validation); 0 = no bound")

		stateDir     = fs.String("state-dir", "", "journal registrations/deletions to this directory and recover them on startup (empty = in-memory only)")
		compactEvery = fs.Int("compact-every", 0, "fold the journal into a snapshot every N appends (0 = default 1024, negative = never)")

		noIncremental = fs.Bool("no-incremental", false, "run every spec on every request instead of re-running only specs affected by keys changed since the spec's last validation")
		snapshotCache = fs.Int("snapshot-cache", 0, "per-tenant content-addressed cache of parsed payload sets (0 = default 8, negative = disable)")
		resultCache   = fs.Int("result-cache", 0, "per-tenant (spec, payload) response cache + request coalescing (0 = default 256, negative = disable)")

		maxConcurrent = fs.Int("max-concurrent", 0, "validations running at once (0 = default 4)")
		maxQueue      = fs.Int("max-queue", 0, "requests waiting for a slot before 429 (0 = 2x max-concurrent)")
		queueWait     = fs.Duration("queue-wait", 0, "how long a queued request waits for a slot (0 = default 10s)")

		maxTenants      = fs.Int("max-tenants", 0, "distinct tenants (0 = default 64)")
		maxSpecs        = fs.Int("max-specs", 0, "registered specs per tenant (0 = default 128)")
		maxSpecBytes    = fs.Int64("max-spec-bytes", 0, "one spec's CPL source size (0 = default 1 MiB)")
		maxSources      = fs.Int("max-sources", 0, "payloads+sources per request (0 = default 64)")
		maxPayloadBytes = fs.Int64("max-payload-bytes", 0, "total payload bytes per request (0 = default 32 MiB)")

		version = fs.Bool("version", false, "print the ConfValley version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "cvserve version %s (report schema v%d)\n", confvalley.Version, confvalley.ReportSchemaVersion)
		return 0
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "cvserve: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	srv := serve.New(serve.Config{
		Quotas: serve.Quotas{
			MaxTenants:      *maxTenants,
			MaxSpecs:        *maxSpecs,
			MaxSpecBytes:    *maxSpecBytes,
			MaxSources:      *maxSources,
			MaxPayloadBytes: *maxPayloadBytes,
		},
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		SnapshotCacheSize: *snapshotCache,
		ResultCacheSize:   *resultCache,
		NoIncremental:     *noIncremental,
		StateDir:          *stateDir,
		CompactEvery:      *compactEvery,
		Runner: runner.Options{
			Parallel:    *parallel,
			MaxStale:    *maxStale,
			LoadTimeout: *loadTimeout,
			Env:         confvalley.HostEnv(),
		},
	})

	// Listen before announcing: with -addr :0 the kernel picks the port,
	// and the printed URL (parsed by the e2e harness and by humans
	// copy-pasting) must carry the resolved address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "cvserve: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "cvserve: listening on http://%s\n", ln.Addr())
	flush(stdout)

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// The socket is live before recovery so load balancers can watch
	// /readyz flip; every state-changing request answers 503 until the
	// replay below finishes. In-memory mode recovers nothing and is
	// ready immediately.
	if err := srv.Recover(); err != nil {
		fmt.Fprintf(stderr, "cvserve: recovering state: %v\n", err)
		hs.Close()
		return 2
	}
	if *stateDir != "" {
		st := srv.Stats().Durability
		fmt.Fprintf(stdout, "cvserve: ready — recovered %d spec(s) from %d journal record(s) (%d torn-tail truncation(s))\n",
			st.RecoveredSpecs, st.ReplayedRecords, st.TornTruncations)
		flush(stdout)
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "cvserve: %v\n", err)
			return 2
		}
		return 0
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /readyz to draining (503) so load
	// balancers stop routing, stop accepting, let in-flight validations
	// finish, release the journal, then report what the server did
	// while it was up.
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "cvserve: closing journal: %v\n", err)
	}
	st := srv.Stats()
	fmt.Fprintf(stderr, "cvserve: shut down after %d validation(s), %d violation(s), %d busy rejection(s)\n",
		st.Validations, st.Violations, st.RejectedBusy)
	return 0
}

// flush pushes the listen banner through any buffering writer so
// supervisors and the e2e harness see the resolved address promptly.
func flush(w io.Writer) {
	switch f := w.(type) {
	case interface{ Flush() error }:
		f.Flush()
	case interface{ Flush() }:
		f.Flush()
	case interface{ Sync() error }:
		f.Sync()
	}
}
