package main

// TestE2ECrashRecovery is the process-level durability gate: boot
// cvserve with -state-dir, register specs and validate through cvcall,
// SIGKILL the server mid-life (no drain, no journal close — the worst
// crash shape), restart it on the same state directory, and hold the
// recovered server to byte-identity with the dead one — same spec
// listing, same validation report modulo timing. CI runs it inside the
// crash-chaos job (`make crash-chaos`).

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// serverProc is one cvserve process plus its resolved base URL.
type serverProc struct {
	cmd  *exec.Cmd
	base string
	errb *bytes.Buffer
}

// startServer boots cvserve with the given extra flags on an
// OS-assigned port and waits for the listen banner.
func startServer(t *testing.T, bin string, extra ...string) *serverProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errb := &bytes.Buffer{}
	cmd.Stderr = errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("cvserve produced no output; stderr: %s", errb.String())
	}
	banner := sc.Text()
	const prefix = "cvserve: listening on "
	if !strings.HasPrefix(banner, prefix) {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected banner %q", banner)
	}
	go func() { // drain the ready line and anything after
		for sc.Scan() {
		}
	}()
	return &serverProc{cmd: cmd, base: strings.TrimPrefix(banner, prefix), errb: errb}
}

// kill -9: no drain, no deferred closes, the journal handle just dies.
func (p *serverProc) sigkill(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGKILL)
	p.cmd.Wait()
}

func (p *serverProc) sigterm(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		t.Error("cvserve did not shut down on SIGTERM")
	}
}

// waitReady polls the server through `cvcall ready` until it reports
// ready (exit 0) or the deadline passes.
func waitReady(t *testing.T, cvcall, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// -retries rides out the connection-refused window while the
		// socket comes up; the loop rides out "recovering".
		if _, _, code := runCmd(t, cvcall, "-server", base, "-retries", "3", "ready"); code == 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never became ready", base)
}

func TestE2ECrashRecovery(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir, "./cmd/cvserve", "./cmd/cvcall")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	cvserve := filepath.Join(dir, "cvserve")
	cvcall := filepath.Join(dir, "cvcall")
	stateDir := filepath.Join(dir, "state")

	specFile := filepath.Join(dir, "checks.cpl")
	dataFile := filepath.Join(dir, "app.kv")
	if err := os.WriteFile(specFile, []byte(e2eSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataFile, []byte(e2eData), 0o644); err != nil {
		t.Fatal(err)
	}

	// ---- life 1: populate state, then die hard ----
	p1 := startServer(t, cvserve, "-state-dir", stateDir)
	waitReady(t, cvcall, p1.base)
	call1 := func(args ...string) (string, string, int) {
		return runCmd(t, cvcall, append([]string{"-server", p1.base, "-tenant", "e2e", "-retries", "2"}, args...)...)
	}
	for i, spec := range []string{"checks", "checks2", "doomed"} {
		if out, errOut, code := call1("register", spec, specFile); code != 0 {
			t.Fatalf("register %d exited %d\nstdout: %s\nstderr: %s", i, code, out, errOut)
		}
	}
	if out, _, code := call1("delete", "doomed"); code != 0 {
		t.Fatalf("delete exited %d: %s", code, out)
	}
	// The identity baselines. List before validating so has_report is
	// false on both sides of the crash (last reports are deliberately
	// process-local, not journaled).
	listBefore, _, code := call1("-json", "list")
	if code != 0 {
		t.Fatalf("list exited %d", code)
	}
	valBefore, _, valCode := call1("-json", "validate", "checks", "kv:"+dataFile)
	if valCode != 1 {
		t.Fatalf("validate exited %d, want 1 (violations)", valCode)
	}
	p1.sigkill(t)

	// ---- life 2: recover from the same directory ----
	p2 := startServer(t, cvserve, "-state-dir", stateDir)
	defer func() {
		p2.sigterm(t)
		t.Logf("cvserve stderr: %s", p2.errb.String())
	}()
	waitReady(t, cvcall, p2.base)
	call2 := func(args ...string) (string, string, int) {
		return runCmd(t, cvcall, append([]string{"-server", p2.base, "-tenant", "e2e", "-retries", "2"}, args...)...)
	}

	listAfter, _, code := call2("-json", "list")
	if code != 0 {
		t.Fatalf("post-recovery list exited %d", code)
	}
	if listAfter != listBefore {
		t.Errorf("recovered spec listing diverged:\n before: %s\n after:  %s", listBefore, listAfter)
	}
	valAfter, _, valCode := call2("-json", "validate", "checks", "kv:"+dataFile)
	if valCode != 1 {
		t.Fatalf("post-recovery validate exited %d, want 1", valCode)
	}
	if got, want := zeroTiming(t, []byte(valAfter)), zeroTiming(t, []byte(valBefore)); !bytes.Equal(got, want) {
		t.Errorf("recovered validation report diverged:\n before: %s\n after:  %s", want, got)
	}
	// The deleted spec must stay deleted across the crash.
	if _, _, code := call2("report", "doomed"); code != 2 {
		t.Errorf("deleted spec resurrected: report exited %d, want 2", code)
	}
	// The recovered server keeps journaling: a spec registered in life
	// 2 survives a second crash.
	if out, errOut, code := call2("register", "reborn", specFile); code != 0 {
		t.Fatalf("post-recovery register exited %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	// The durability counters are wired through /statsz.
	if out, _, code := call2("-json", "stats"); code != 0 || !strings.Contains(out, `"journal_records"`) {
		t.Fatalf("stats exited %d without durability block: %q", code, out)
	}
	p2.sigkill(t)

	// ---- life 3: both lives' writes are present ----
	p3 := startServer(t, cvserve, "-state-dir", stateDir)
	defer func() {
		p3.sigterm(t)
		t.Logf("cvserve stderr: %s", p3.errb.String())
	}()
	waitReady(t, cvcall, p3.base)
	out, _, code := runCmd(t, cvcall, "-server", p3.base, "-tenant", "e2e", "list")
	if code != 0 {
		t.Fatalf("third-life list exited %d", code)
	}
	for _, spec := range []string{"checks", "checks2", "reborn"} {
		if !strings.Contains(out, spec) {
			t.Errorf("third life lost %q; list:\n%s", spec, out)
		}
	}
	if strings.Contains(out, "doomed") {
		t.Errorf("third life resurrected a deleted spec; list:\n%s", out)
	}
}

// TestE2EInMemoryStillWorks pins the default: without -state-dir the
// server is ready immediately and journals nothing.
func TestE2EInMemoryStillWorks(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir, "./cmd/cvserve", "./cmd/cvcall")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	p := startServer(t, filepath.Join(dir, "cvserve"))
	defer p.sigterm(t)
	cvcall := filepath.Join(dir, "cvcall")
	waitReady(t, cvcall, p.base)
	if out, _, code := runCmd(t, cvcall, "-server", p.base, "ready"); code != 0 || !strings.Contains(out, "ready") {
		t.Fatalf("in-memory ready exited %d: %q", code, out)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if e.Name() == "ops.wal" || e.Name() == "state.snap" {
				t.Errorf("in-memory server wrote %s", e.Name())
			}
		}
	}
}
