package main

// TestE2E is the full service round trip over real processes and a real
// socket: build cvserve, cvcall and cvcheck, boot the server on a
// loopback port, drive it with cvcall register→validate→report, and
// hold the service to the CLI contract — same exit codes, and a wire
// report byte-identical (modulo timing) to cvcheck's for the same
// spec and data. CI runs it as a dedicated job (`make e2e`).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"confvalley"
)

const e2eSpec = `$app.timeout -> int & [1, 60]
$app.retries -> int & [0, 5]
$db.host -> nonempty
`

// Violates two of the three checks: exit code 1 on both paths.
const e2eData = "app.timeout = 400\napp.retries = 9\ndb.host = db1.example\n"

// zeroTiming decodes a wire report, zeroes its timing, and re-encodes —
// the "byte-identical modulo timing" comparison form.
func zeroTiming(t *testing.T, raw []byte) []byte {
	t.Helper()
	w, err := confvalley.DecodeReportWire(raw)
	if err != nil {
		t.Fatalf("decoding wire report: %v\nraw: %s", err, raw)
	}
	w.DurationNS = 0
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runCmd(t *testing.T, bin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestE2E(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir,
		"./cmd/cvserve", "./cmd/cvcall", "./cmd/cvcheck")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	cvserve := filepath.Join(dir, "cvserve")
	cvcall := filepath.Join(dir, "cvcall")
	cvcheck := filepath.Join(dir, "cvcheck")

	specFile := filepath.Join(dir, "checks.cpl")
	dataFile := filepath.Join(dir, "app.kv")
	if err := os.WriteFile(specFile, []byte(e2eSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataFile, []byte(e2eData), 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot the server on an OS-assigned port and read the resolved
	// address off its announcement line.
	srv := exec.Command(cvserve, "-addr", "127.0.0.1:0")
	srvOut, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var srvErr bytes.Buffer
	srv.Stderr = &srvErr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- srv.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			t.Error("cvserve did not shut down on SIGTERM")
		}
		t.Logf("cvserve stderr: %s", srvErr.String())
	}()

	sc := bufio.NewScanner(srvOut)
	if !sc.Scan() {
		t.Fatalf("cvserve produced no output; stderr: %s", srvErr.String())
	}
	banner := sc.Text()
	const prefix = "cvserve: listening on "
	if !strings.HasPrefix(banner, prefix) {
		t.Fatalf("unexpected banner %q", banner)
	}
	base := strings.TrimPrefix(banner, prefix)
	go func() { // drain so the server never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	call := func(args ...string) (string, string, int) {
		return runCmd(t, cvcall, append([]string{"-server", base, "-tenant", "e2e"}, args...)...)
	}

	// Register and list.
	if out, errOut, code := call("register", "checks", specFile); code != 0 {
		t.Fatalf("register exited %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if out, _, code := call("list"); code != 0 || !strings.Contains(out, "checks") {
		t.Fatalf("list exited %d, out %q", code, out)
	}

	// Validate violating data: exit 1 with the wire report on stdout.
	callJSON, callErr, callCode := call("-json", "validate", "checks", "kv:"+dataFile)
	if callCode != 1 {
		t.Fatalf("cvcall validate exited %d, want 1\nstdout: %s\nstderr: %s", callCode, callJSON, callErr)
	}

	// The stored report reproduces the validation response.
	repJSON, _, repCode := call("-json", "report", "checks")
	if repCode != 1 {
		t.Fatalf("cvcall report exited %d, want 1", repCode)
	}
	if got, want := zeroTiming(t, []byte(repJSON)), zeroTiming(t, []byte(callJSON)); !bytes.Equal(got, want) {
		t.Errorf("stored report diverged from validate response:\nreport:   %s\nvalidate: %s", got, want)
	}

	// The CLI path on identical inputs: identical exit code, identical
	// report bytes modulo timing.
	checkJSON, checkErr, checkCode := runCmd(t, cvcheck, "-json", "-spec", specFile, "-data", "kv:"+dataFile)
	if checkCode != 1 {
		t.Fatalf("cvcheck exited %d, want 1\nstderr: %s", checkCode, checkErr)
	}
	if got, want := zeroTiming(t, []byte(callJSON)), zeroTiming(t, []byte(checkJSON)); !bytes.Equal(got, want) {
		t.Errorf("service and CLI reports diverged:\nservice: %s\n    cli: %s", got, want)
	}

	// Health carries the build version so clients know what they talk to.
	if out, _, code := call("health"); code != 0 || !strings.Contains(out, confvalley.Version) {
		t.Fatalf("health exited %d without version %s: %q", code, confvalley.Version, out)
	}

	// Stats counted the two validations (validate + none for report).
	if out, _, code := call("-json", "stats"); code != 0 || !strings.Contains(out, `"validations": 1`) {
		t.Fatalf("stats exited %d: %q", code, out)
	}

	// Exit-code contract end to end: clean data exits 0.
	cleanFile := filepath.Join(dir, "clean.kv")
	if err := os.WriteFile(cleanFile, []byte("app.timeout = 30\napp.retries = 2\ndb.host = db1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, errOut, code := call("validate", "checks", "kv:"+cleanFile); code != 0 {
		t.Fatalf("clean validate exited %d\nstdout: %s\nstderr: %s", code, out, errOut)
	} else if !strings.Contains(out, "passed") && !strings.Contains(out, "PASS") && out == "" {
		t.Logf("clean validate output: %q", out)
	}

	// Unknown spec is a client-side usage error (exit 2), not a crash.
	if _, _, code := call("validate", "nosuch"); code != 2 {
		t.Fatalf("validate of unknown spec exited %d, want 2", code)
	}
}
