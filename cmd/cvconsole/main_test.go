package main

import (
	"bytes"
	"strings"
	"testing"

	"confvalley"
)

func runConsole(t *testing.T, s *confvalley.Session, input string) string {
	t.Helper()
	var out bytes.Buffer
	repl(s, strings.NewReader(input), &out)
	return out.String()
}

func TestConsolePassAndFail(t *testing.T) {
	s := confvalley.NewSession()
	if _, err := s.LoadData("kv", []byte("Fabric.Timeout = 30"), "k", ""); err != nil {
		t.Fatal(err)
	}
	out := runConsole(t, s, `
$Fabric.Timeout -> int
$Fabric.Timeout -> bool
:quit
`)
	if !strings.Contains(out, "PASS") {
		t.Errorf("missing PASS:\n%s", out)
	}
	if !strings.Contains(out, "FAIL Fabric.Timeout") {
		t.Errorf("missing FAIL:\n%s", out)
	}
}

func TestConsoleGetAndInfer(t *testing.T) {
	s := confvalley.NewSession()
	for i := 0; i < 12; i++ {
		if _, err := s.LoadData("kv", []byte("Node::n"+string(rune('a'+i))+".Port = 808"+string(rune('0'+i%10))), "k", ""); err != nil {
			t.Fatal(err)
		}
	}
	out := runConsole(t, s, "get $Node.Port\ninfer\nexit\n")
	if !strings.Contains(out, "12 instance(s)") {
		t.Errorf("get output wrong:\n%s", out)
	}
	if !strings.Contains(out, "$Node.Port ->") {
		t.Errorf("infer output wrong:\n%s", out)
	}
}

func TestConsoleErrorsAndComments(t *testing.T) {
	s := confvalley.NewSession()
	out := runConsole(t, s, "// a comment\n$ -> int\n:q\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error not surfaced:\n%s", out)
	}
}

func TestConsoleLoad(t *testing.T) {
	s := confvalley.NewSession()
	s.RegisterSource("mem", []byte("A = 1"))
	out := runConsole(t, s, "load 'kv' 'mem'\n$A -> int\n:q\n")
	if !strings.Contains(out, "store now holds 1 instance(s)") {
		t.Errorf("load output wrong:\n%s", out)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("validation after load failed:\n%s", out)
	}
}

func TestConsoleHelp(t *testing.T) {
	s := confvalley.NewSession()
	out := runConsole(t, s, ":help\n:q\n")
	if !strings.Contains(out, "load '<format>'") || !strings.Contains(out, "infer") {
		t.Errorf("help output:\n%s", out)
	}
}
