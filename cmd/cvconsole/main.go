// Command cvconsole is ConfValley's interactive validation console
// (§5.1's second usage scenario): operators load production configuration
// data and validate one-liner specifications on the fly.
//
// Commands:
//
//	load '<format>' '<path>' [as Scope]   load a configuration source
//	get $<notation>                       list matching instances
//	infer                                 print inferred specifications
//	<any CPL specification>               validate it immediately
//	:quit                                 exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"confvalley"
)

func main() {
	version := flag.Bool("version", false, "print the ConfValley version and exit")
	flag.Parse()
	if *version {
		fmt.Printf("cvconsole version %s\n", confvalley.Version)
		return
	}
	s := confvalley.NewSession()
	s.SetEnv(confvalley.HostEnv())
	fmt.Println("ConfValley console — type a CPL specification, 'get $Key', 'infer', or :quit")
	repl(s, os.Stdin, os.Stdout)
}

// repl runs the console loop; split out for testing.
func repl(s *confvalley.Session, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "cpl> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "//"):
			continue
		case line == ":quit" || line == ":q" || line == "exit":
			return
		case line == ":help" || line == "help":
			fmt.Fprint(out, `commands:
  load '<format>' '<path>' [as Scope]   load a configuration source
  get $<notation>                       list matching instances
  infer                                 print inferred specifications
  <any CPL specification>               validate it immediately
  :quit                                 exit
`)
			continue
		case line == "infer":
			fmt.Fprint(out, s.InferCPL())
			continue
		case strings.HasPrefix(line, "get "):
			notation := strings.TrimSpace(strings.TrimPrefix(line, "get "))
			notation = strings.TrimPrefix(notation, "$")
			ins, err := s.Instances(notation)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			for _, in := range ins {
				fmt.Fprintf(out, "  %s\n", in)
			}
			fmt.Fprintf(out, "%d instance(s)\n", len(ins))
			continue
		case strings.HasPrefix(line, "load "):
			rep, err := s.Validate(line) // load commands run through Validate
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			_ = rep
			fmt.Fprintf(out, "loaded; store now holds %d instance(s)\n", s.Store().Len())
			continue
		}
		rep, err := s.Check(line)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		if rep.Passed() {
			fmt.Fprintf(out, "PASS (%d instance check(s))\n", rep.InstancesChecked)
			continue
		}
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "FAIL %s = %q: %s\n", v.Key, v.Value, v.Message)
		}
		for _, e := range rep.SpecErrors {
			fmt.Fprintf(out, "spec error: %s\n", e)
		}
	}
}
