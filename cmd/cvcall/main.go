// Command cvcall is the thin client for a running cvserve: it reads
// files locally, talks JSON to the service, and renders reports exactly
// like cvcheck does — same text renderer, same wire JSON, same exit
// codes — so swapping the CLI for the service changes where validation
// runs, not what anything downstream sees.
//
// Usage:
//
//	cvcall [-server http://127.0.0.1:7077] [-tenant NAME] [-json] [-strict]
//	       [-timeout 30s] [-retries N] [-version] <command> [args]
//
// Commands:
//
//	register <spec> <file.cpl>                  upload a CPL program (-strict refuses
//	                                            error-severity lint findings)
//	list                                        list registered specs
//	delete <spec>                               remove a spec
//	validate <spec> [format:path[:scope]]...    validate local files
//	report <spec>                               fetch the last report
//	health                                      server liveness + version
//	ready                                       server readiness (exit 0 ready,
//	                                            1 recovering/draining)
//	stats                                       server counters
//
// -retries N retries transient failures (connection errors while the
// server restarts, 429 admission overflow, 503 recovering/draining) up
// to N extra times with capped jittered exponential backoff, honoring
// the server's Retry-After header when present. Every cvcall operation
// is safe to retry; the default is 0 (fail fast).
//
// validate reads each format:path[:scope] argument locally (the same
// syntax as cvcheck -data) and ships the bytes as request payloads, so
// the server never needs access to the client's filesystem.
//
// Exit status mirrors cvcheck:
//
//	0  validation ran and found no violations
//	1  validation ran and found violations (or spec errors)
//	2  usage, transport, specification or compilation error
//	3  every configuration source failed to load — nothing was validated
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"confvalley"
	"confvalley/internal/runner"
	"confvalley/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvcall", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server  = fs.String("server", "http://127.0.0.1:7077", "cvserve base URL")
		tenant  = fs.String("tenant", "default", "tenant name scoping every spec operation")
		asJSON  = fs.Bool("json", false, "emit raw JSON responses instead of rendered text")
		strict  = fs.Bool("strict", false, "with register: refuse the spec if lint finds error-severity diagnostics")
		timeout = fs.Duration("timeout", 30*time.Second, "bound each request; 0 = no bound")
		retries = fs.Int("retries", 0, "retry transient failures (connection errors, 429, 503) up to N extra times")
		version = fs.Bool("version", false, "print the ConfValley version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "cvcall version %s (report schema v%d)\n", confvalley.Version, confvalley.ReportSchemaVersion)
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "cvcall: a command is required (register, list, delete, validate, report, health, ready, stats)")
		fs.Usage()
		return 2
	}

	ctx := context.Background()
	clientTimeout := time.Duration(-1) // flag 0 = explicitly unbounded
	if *timeout > 0 {
		clientTimeout = *timeout
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	c := &serve.Client{Base: *server, Tenant: *tenant, Timeout: clientTimeout, Retries: *retries}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	fail := func(err error) int {
		fmt.Fprintf(stderr, "cvcall: %s: %v\n", cmd, err)
		return 2
	}
	emit := func(v any) int {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, string(b))
		return 0
	}

	switch cmd {
	case "register":
		if len(rest) != 2 {
			fmt.Fprintln(stderr, "cvcall: usage: register <spec> <file.cpl>")
			return 2
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return fail(err)
		}
		info, err := c.RegisterWith(ctx, rest[0], string(src), serve.RegisterOptions{Strict: *strict})
		if err != nil {
			var lre *serve.LintRejectedError
			if errors.As(err, &lre) {
				for _, d := range lre.Diagnostics {
					fmt.Fprintln(stderr, d)
				}
			}
			return fail(err)
		}
		// Advisory lint findings render like cvlint's, on stderr.
		for _, d := range info.Lint {
			fmt.Fprintln(stderr, d)
		}
		if *asJSON {
			return emit(info)
		}
		fmt.Fprintf(stdout, "cvcall: registered %s (%d specification(s), %d bytes)\n", info.Name, info.Specs, info.Bytes)
		return 0

	case "list":
		if len(rest) != 0 {
			fmt.Fprintln(stderr, "cvcall: usage: list")
			return 2
		}
		infos, err := c.ListSpecs(ctx)
		if err != nil {
			return fail(err)
		}
		if *asJSON {
			return emit(infos)
		}
		for _, info := range infos {
			state := "never validated"
			if info.HasReport {
				state = "has report"
			}
			fmt.Fprintf(stdout, "%s\t%d specification(s)\t%d bytes\t%s\n", info.Name, info.Specs, info.Bytes, state)
		}
		return 0

	case "delete":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "cvcall: usage: delete <spec>")
			return 2
		}
		if err := c.Delete(ctx, rest[0]); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "cvcall: deleted %s\n", rest[0])
		return 0

	case "validate":
		if len(rest) < 1 {
			fmt.Fprintln(stderr, "cvcall: usage: validate <spec> [format:path[:scope]]...")
			return 2
		}
		req := serve.ValidateRequest{}
		for _, arg := range rest[1:] {
			src, err := runner.ParseSourceArg(arg)
			if err != nil {
				fmt.Fprintf(stderr, "cvcall: %v\n", err)
				return 2
			}
			data, err := os.ReadFile(src.Name)
			if err != nil {
				return fail(err)
			}
			req.Payloads = append(req.Payloads, serve.PayloadRef{
				Name: src.Name, Format: src.Format, Scope: src.Scope, Data: string(data),
			})
		}
		resp, err := c.Validate(ctx, rest[0], req)
		if err != nil {
			return fail(err)
		}
		return renderResponse(resp, *asJSON, stdout, stderr, fail)

	case "report":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "cvcall: usage: report <spec>")
			return 2
		}
		resp, err := c.LastReport(ctx, rest[0])
		if err != nil {
			return fail(err)
		}
		return renderResponse(resp, *asJSON, stdout, stderr, fail)

	case "health":
		h, err := c.Health(ctx)
		if err != nil {
			return fail(err)
		}
		if *asJSON {
			return emit(h)
		}
		fmt.Fprintf(stdout, "cvcall: %s — version %s, schema v%d, up %ds, %d tenant(s), %d in flight, %d queued\n",
			h.Status, h.Version, h.SchemaVersion, h.UptimeSeconds, h.Tenants, h.InFlight, h.Queued)
		return 0

	case "ready":
		info, err := c.Ready(ctx)
		if err != nil && !errors.Is(err, serve.ErrNotReady) {
			return fail(err)
		}
		if *asJSON {
			emit(info)
		} else {
			fmt.Fprintf(stdout, "cvcall: %s\n", info.State)
		}
		if !info.Ready {
			return 1
		}
		return 0

	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return fail(err)
		}
		return emit(st)

	default:
		fmt.Fprintf(stderr, "cvcall: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

// renderResponse prints a validate/report response the way cvcheck
// prints a local run — wire JSON with -json (byte-identical to cvcheck
// -json for the same inputs), rendered text otherwise, load accounting
// on stderr — and returns the exit-code contract value the server
// computed.
func renderResponse(resp *serve.ValidateResponse, asJSON bool, stdout, stderr io.Writer, fail func(error) int) int {
	if resp.Load != nil {
		resp.Load.Render(stderr)
	}
	if resp.SpecLoads != nil {
		resp.SpecLoads.Render(stderr)
	}
	if asJSON {
		b, err := json.MarshalIndent(resp.Report, "", "  ")
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, string(b))
	} else if err := resp.Report.Report().Render(stdout); err != nil {
		return fail(err)
	}
	if resp.AllSourcesFailed {
		fmt.Fprintln(stderr, "cvcall: every configuration source failed to load; nothing was validated")
	}
	return resp.Code
}
