// Command cvinfer runs ConfValley's inference engine over known-good
// configuration data and emits the mined CPL specifications (§4.5).
//
// Usage:
//
//	cvinfer [-data format:path[:scope]]... [-out specs.cpl] [-stats]
//
// With -stats, a Table 5-style per-category summary is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"confvalley"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out     = flag.String("out", "", "write generated CPL here (default stdout)")
		stats   = flag.Bool("stats", false, "print a per-category constraint summary")
		version = flag.Bool("version", false, "print the ConfValley version and exit")
		data    dataFlags
	)
	flag.Var(&data, "data", "configuration source as format:path[:scope]; repeatable")
	flag.Parse()
	if *version {
		fmt.Printf("cvinfer version %s\n", confvalley.Version)
		return 0
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "cvinfer: at least one -data source is required")
		flag.Usage()
		return 2
	}

	s := confvalley.NewSession()
	for _, d := range data {
		parts := strings.SplitN(d, ":", 3)
		if len(parts) < 2 {
			fmt.Fprintf(os.Stderr, "cvinfer: bad -data %q; want format:path[:scope]\n", d)
			return 2
		}
		scope := ""
		if len(parts) == 3 {
			scope = parts[2]
		}
		n, err := s.LoadFile(parts[0], parts[1], scope)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cvinfer: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "cvinfer: loaded %d instance(s) from %s\n", n, parts[1])
	}

	res := s.Infer(confvalley.DefaultInferenceOptions())
	if *stats {
		fmt.Fprintf(os.Stderr, "cvinfer: %d classes, %d instances analyzed in %v\n",
			res.ClassesAnalyzed, res.InstancesAnalyzed, res.InferTime)
		for cat, n := range res.CountByKind() {
			fmt.Fprintf(os.Stderr, "  %-12s %d\n", cat, n)
		}
	}
	cpl := res.GenerateCPL()
	if *out == "" {
		fmt.Print(cpl)
		return 0
	}
	if err := os.WriteFile(*out, []byte(cpl), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cvinfer: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "cvinfer: wrote %d constraint(s) to %s\n", len(res.Constraints), *out)
	return 0
}
