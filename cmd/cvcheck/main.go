// Command cvcheck is ConfValley's batch validator: it loads configuration
// sources, compiles a CPL specification file, and reports violations —
// the main usage scenario of §5.1.
//
// Usage:
//
//	cvcheck -spec checks.cpl [-data xml:/path/settings.xml[:Scope]]...
//	        [-parallel N] [-stop] [-json] [-watch 2s] [-interpret]
//	        [-no-incremental]
//
// Data sources may also come from load commands inside the specification
// file. With -watch, cvcheck revalidates whenever the specification or a
// data file changes — the continuous-validation scenario of §5.1. Watch
// rounds are incremental by default: only the specifications whose
// footprint overlaps the keys changed since the last round re-run
// (-no-incremental restores full revalidation). With both -watch and
// -json, each round prints one compact JSON report object to stdout;
// human-oriented text goes to stderr. The exit status is 0 when
// validation passes, 1 on violations, and 2 on usage or compilation
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"confvalley"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath = flag.String("spec", "", "CPL specification file (required)")
		parallel = flag.Int("parallel", 1, "validate specifications in N parallel partitions")
		stop     = flag.Bool("stop", false, "stop at the first violation")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
		watch    = flag.Duration("watch", 0, "revalidate at this interval when spec or data files change (0 = run once)")
		interp   = flag.Bool("interpret", false, "execute via the AST interpreter instead of lowered plans")
		rounds   = flag.Int("watch-rounds", 0, "with -watch, exit after this many validation rounds (0 = forever; for tests)")
		noInc    = flag.Bool("no-incremental", false, "with -watch, fully revalidate every round instead of re-running only the specs affected by changed keys")
		data     dataFlags
	)
	flag.Var(&data, "data", "configuration source as format:path[:scope]; repeatable")
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "cvcheck: -spec is required")
		flag.Usage()
		return 2
	}

	// The session persists across watch rounds. Rounds where only data
	// changed reuse the compiled program, so the executable-plan cache
	// keyed on program identity keeps its entry and revalidation skips
	// both compilation and plan lowering. (Files pulled in by include
	// commands are not watched; editing one without touching the
	// top-level spec keeps the cached program, matching the watch loop's
	// own change detection.)
	//
	// Each round loads the data files into a *fresh* store built off to
	// the side and swaps it in atomically: a validation still in flight
	// pinned the old store's snapshot and finishes against it, instead of
	// racing a reload mutating the store underneath it.
	s := confvalley.NewSession()
	s.Parallel = *parallel
	s.StopOnFirst = *stop
	s.Interpret = *interp
	// Watch rounds revalidate a mostly-unchanged corpus, so incremental
	// mode is the default there: each round diffs the fresh store's
	// snapshot against the previous round's and re-runs only the specs
	// whose footprint the changed keys touch.
	s.Incremental = *watch > 0 && !*noInc
	s.SpecDir = filepath.Dir(*specPath)
	s.SetEnv(confvalley.HostEnv())

	var (
		lastSrc  string
		lastProg *confvalley.Program
	)
	validateOnce := func() int {
		st := confvalley.NewStore()
		for _, d := range data {
			format, path, scope, err := splitDataArg(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
				return 2
			}
			n, err := confvalley.LoadFileInto(st, format, path, scope)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "cvcheck: loaded %d instance(s) from %s\n", n, path)
		}
		s.SwapStore(st)

		src, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
			return 2
		}
		if lastProg == nil || string(src) != lastSrc {
			prog, err := s.Compile(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
				return 2
			}
			lastSrc, lastProg = string(src), prog
		}
		rep, err := s.ValidateProgram(lastProg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
			return 2
		}
		if s.Incremental {
			fmt.Fprintf(os.Stderr, "cvcheck: re-ran %d/%d specs (%d reused)\n",
				rep.SpecsRun-rep.SpecsReused, rep.SpecsRun, rep.SpecsReused)
		}
		switch {
		case *asJSON && *watch > 0:
			// Watch mode emits one compact JSON object per round on
			// stdout — a machine-consumable stream; all human-oriented
			// text (round banners, load counts, re-run stats) stays on
			// stderr.
			b, err := json.Marshal(rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Println(string(b))
		case *asJSON:
			b, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Println(string(b))
		default:
			if err := rep.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "cvcheck: %v\n", err)
				return 2
			}
		}
		if rep.Passed() {
			return 0
		}
		return 1
	}

	if *watch <= 0 {
		return validateOnce()
	}
	return watchLoop(*specPath, data, *watch, *rounds, validateOnce)
}

// watchLoop revalidates whenever the specification file or any data file
// changes, polling modification times at the given interval. maxRounds
// bounds the number of validation rounds (0 = unbounded); the exit code
// is the last round's.
func watchLoop(specPath string, data []string, interval time.Duration, maxRounds int, validate func() int) int {
	files := []string{specPath}
	for _, d := range data {
		if _, path, _, err := splitDataArg(d); err == nil {
			files = append(files, path)
		}
	}
	stamp := func() string {
		var b strings.Builder
		for _, f := range files {
			if info, err := os.Stat(f); err == nil {
				fmt.Fprintf(&b, "%s=%d/%d;", f, info.ModTime().UnixNano(), info.Size())
			} else {
				fmt.Fprintf(&b, "%s=gone;", f)
			}
		}
		return b.String()
	}

	last := ""
	code := 0
	for round := 0; ; {
		now := stamp()
		if now != last {
			last = now
			round++
			fmt.Fprintf(os.Stderr, "cvcheck: validation round %d\n", round)
			code = validate()
			if maxRounds > 0 && round >= maxRounds {
				return code
			}
		}
		time.Sleep(interval)
	}
}

// splitDataArg parses format:path[:scope]. Paths may contain colons on
// Windows-style shares, so the format is taken from the first colon and
// the scope from the last only when it looks like a scope (no slashes).
func splitDataArg(arg string) (format, path, scope string, err error) {
	i := strings.IndexByte(arg, ':')
	if i <= 0 {
		return "", "", "", fmt.Errorf("bad -data %q; want format:path[:scope]", arg)
	}
	format, rest := arg[:i], arg[i+1:]
	if j := strings.LastIndexByte(rest, ':'); j > 0 {
		tail := rest[j+1:]
		if tail != "" && !strings.ContainsAny(tail, `/\.`) {
			return format, rest[:j], tail, nil
		}
	}
	return format, rest, "", nil
}
