// Command cvcheck is ConfValley's batch validator: it loads configuration
// sources, compiles a CPL specification file, and reports violations —
// the main usage scenario of §5.1.
//
// Usage:
//
//	cvcheck -spec checks.cpl [-data xml:/path/settings.xml[:Scope]]...
//	        [-parallel N] [-stop] [-json] [-watch 2s] [-interpret]
//	        [-no-incremental] [-load-timeout 5s] [-max-stale N]
//
// Data sources may also come from load commands inside the specification
// file. With -watch, cvcheck revalidates whenever the specification or a
// data file changes — the continuous-validation scenario of §5.1. Watch
// rounds are incremental by default: only the specifications whose
// footprint overlaps the keys changed since the last round re-run
// (-no-incremental restores full revalidation). With both -watch and
// -json, each round prints one compact JSON report object to stdout;
// human-oriented text goes to stderr.
//
// Loading is fault tolerant: a malformed or unreadable source is
// quarantined (and, across watch rounds, served from its last good parse
// for up to -max-stale rounds; 0 = forever, negative = never) instead of
// aborting the round, with per-source accounting on stderr. -load-timeout
// bounds each round; the deadline — or Ctrl-C — stops the round
// mid-flight with a partial report marked as interrupted.
//
// Exit status:
//
//	0  validation ran and found no violations
//	1  validation ran and found violations (or spec errors)
//	2  usage, specification or compilation error
//	3  every configuration source failed to load — nothing was validated
//
// A degraded round that still has data (some sources fresh or stale)
// validates normally and exits 0 or 1; only a round with nothing at all
// to validate exits 3.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"confvalley"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath    = fs.String("spec", "", "CPL specification file (required)")
		parallel    = fs.Int("parallel", 1, "validate specifications in N parallel partitions")
		stop        = fs.Bool("stop", false, "stop at the first violation")
		asJSON      = fs.Bool("json", false, "emit the report as JSON")
		watch       = fs.Duration("watch", 0, "revalidate at this interval when spec or data files change (0 = run once)")
		interp      = fs.Bool("interpret", false, "execute via the AST interpreter instead of lowered plans")
		rounds      = fs.Int("watch-rounds", 0, "with -watch, exit after this many validation rounds (0 = forever; for tests)")
		noInc       = fs.Bool("no-incremental", false, "with -watch, fully revalidate every round instead of re-running only the specs affected by changed keys")
		loadTimeout = fs.Duration("load-timeout", 0, "bound each validation round (loading plus validation); 0 = no bound")
		maxStale    = fs.Int("max-stale", 0, "serve a failing source from its last good parse for at most N watch rounds (0 = forever, negative = never)")
		data        dataFlags
	)
	fs.Var(&data, "data", "configuration source as format:path[:scope]; repeatable")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" {
		fmt.Fprintln(stderr, "cvcheck: -spec is required")
		fs.Usage()
		return 2
	}

	// -data arguments are validated up front: a malformed flag is a usage
	// error (exit 2), unlike a source that later fails to load.
	var dataSources []confvalley.Source
	for _, d := range data {
		format, path, scope, err := splitDataArg(d)
		if err != nil {
			fmt.Fprintf(stderr, "cvcheck: %v\n", err)
			return 2
		}
		dataSources = append(dataSources, confvalley.Source{Name: path, Format: format, Scope: scope})
	}

	// Ctrl-C / SIGTERM cancels the run: loading stops between sources and
	// validation between specifications, and the partial report — clearly
	// marked as interrupted — is still rendered.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The session persists across watch rounds. Rounds where only data
	// changed reuse the compiled program, so the executable-plan cache
	// keyed on program identity keeps its entry and revalidation skips
	// both compilation and plan lowering. (Files pulled in by include
	// commands are not watched; editing one without touching the
	// top-level spec keeps the cached program, matching the watch loop's
	// own change detection.)
	//
	// Each round loads the data files into a *fresh* store built off to
	// the side and swaps it in atomically: a validation still in flight
	// pinned the old store's snapshot and finishes against it, instead of
	// racing a reload mutating the store underneath it. The graceful-
	// degradation loader persists alongside the session, retaining each
	// source's last good parse so a source torn mid-write in round N
	// serves round N-1's data.
	s := confvalley.NewSession()
	s.Parallel = *parallel
	s.StopOnFirst = *stop
	s.Interpret = *interp
	s.Degrade = true
	s.MaxStale = *maxStale
	// Watch rounds revalidate a mostly-unchanged corpus, so incremental
	// mode is the default there: each round diffs the fresh store's
	// snapshot against the previous round's and re-runs only the specs
	// whose footprint the changed keys touch.
	s.Incremental = *watch > 0 && !*noInc
	s.SpecDir = filepath.Dir(*specPath)
	s.SetEnv(confvalley.HostEnv())
	loader := confvalley.NewLoader(*maxStale)

	var (
		lastSrc  string
		lastProg *confvalley.Program
	)
	validateOnce := func(ctx context.Context) int {
		if *loadTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *loadTimeout)
			defer cancel()
		}
		st := confvalley.NewStore()
		dataRep := loader.Load(ctx, st, dataSources)
		for _, o := range dataRep.Outcomes {
			if o.Err == "" {
				fmt.Fprintf(stderr, "cvcheck: loaded %d instance(s) from %s\n", o.Instances, o.Source)
			}
		}
		dataRep.Render(stderr)
		s.SwapStore(st)

		src, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintf(stderr, "cvcheck: %v\n", err)
			return 2
		}
		if lastProg == nil || string(src) != lastSrc {
			prog, err := s.Compile(string(src))
			if err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
			lastSrc, lastProg = string(src), prog
		}
		rep, err := s.ValidateProgramContext(ctx, lastProg)
		if err != nil {
			fmt.Fprintf(stderr, "cvcheck: %v\n", err)
			return 2
		}
		// Fold the spec file's own load commands into the per-round source
		// accounting.
		total, quarantined := len(dataRep.Outcomes), dataRep.Quarantined()
		if lr := s.LastLoadReport(); lr != nil && len(lastProg.Loads) > 0 {
			lr.Render(stderr)
			total += len(lr.Outcomes)
			quarantined += lr.Quarantined()
		}
		if s.Incremental {
			fmt.Fprintf(stderr, "cvcheck: re-ran %d/%d specs (%d reused)\n",
				rep.SpecsRun-rep.SpecsReused, rep.SpecsRun, rep.SpecsReused)
		}
		switch {
		case *asJSON && *watch > 0:
			// Watch mode emits one compact JSON object per round on
			// stdout — a machine-consumable stream; all human-oriented
			// text (round banners, load counts, re-run stats) stays on
			// stderr.
			b, err := json.Marshal(rep)
			if err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(b))
		case *asJSON:
			b, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(b))
		default:
			if err := rep.Render(stdout); err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
		}
		if total > 0 && quarantined == total {
			fmt.Fprintf(stderr, "cvcheck: every configuration source failed to load; nothing was validated\n")
			return 3
		}
		if rep.Passed() {
			return 0
		}
		return 1
	}

	if *watch <= 0 {
		return validateOnce(ctx)
	}
	return watchLoop(ctx, *specPath, data, *watch, *rounds, validateOnce)
}

// watchLoop revalidates whenever the specification file or any data file
// changes, polling modification times at the given interval. maxRounds
// bounds the number of validation rounds (0 = unbounded); the exit code
// is the last round's. Context cancellation (Ctrl-C) ends the loop after
// the in-flight round, returning its code.
func watchLoop(ctx context.Context, specPath string, data []string, interval time.Duration, maxRounds int, validate func(context.Context) int) int {
	files := []string{specPath}
	for _, d := range data {
		if _, path, _, err := splitDataArg(d); err == nil {
			files = append(files, path)
		}
	}
	stamp := func() string {
		var b strings.Builder
		for _, f := range files {
			if info, err := os.Stat(f); err == nil {
				fmt.Fprintf(&b, "%s=%d/%d;", f, info.ModTime().UnixNano(), info.Size())
			} else {
				fmt.Fprintf(&b, "%s=gone;", f)
			}
		}
		return b.String()
	}

	last := ""
	code := 0
	for round := 0; ; {
		now := stamp()
		if now != last {
			last = now
			round++
			fmt.Fprintf(os.Stderr, "cvcheck: validation round %d\n", round)
			code = validate(ctx)
			if maxRounds > 0 && round >= maxRounds {
				return code
			}
		}
		select {
		case <-ctx.Done():
			return code
		case <-time.After(interval):
		}
	}
}

// splitDataArg parses format:path[:scope]. Paths may contain colons on
// Windows-style shares, so the format is taken from the first colon and
// the scope from the last only when it looks like a scope (no slashes).
func splitDataArg(arg string) (format, path, scope string, err error) {
	i := strings.IndexByte(arg, ':')
	if i <= 0 {
		return "", "", "", fmt.Errorf("bad -data %q; want format:path[:scope]", arg)
	}
	format, rest := arg[:i], arg[i+1:]
	if j := strings.LastIndexByte(rest, ':'); j > 0 {
		tail := rest[j+1:]
		if tail != "" && !strings.ContainsAny(tail, `/\.`) {
			return format, rest[:j], tail, nil
		}
	}
	return format, rest, "", nil
}
