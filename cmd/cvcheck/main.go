// Command cvcheck is ConfValley's batch validator: it loads configuration
// sources, compiles a CPL specification file, and reports violations —
// the main usage scenario of §5.1.
//
// Usage:
//
//	cvcheck -spec checks.cpl [-data xml:/path/settings.xml[:Scope]]...
//	        [-parallel N] [-stop] [-json] [-watch 2s] [-interpret]
//	        [-no-incremental] [-load-timeout 5s] [-max-stale N] [-lint]
//	        [-version]
//
// -lint runs the static-analysis passes (internal/lint, the same ones
// cvlint runs) over the specification before validating, using the
// loaded configuration as the corpus-drift snapshot: findings below
// error severity print to stderr as advisories; an error-severity
// finding rejects the specification (exit 2) before validation.
//
// Data sources may also come from load commands inside the specification
// file. With -watch, cvcheck revalidates whenever the specification or a
// data file changes — the continuous-validation scenario of §5.1. Watch
// rounds are incremental by default: only the specifications whose
// footprint overlaps the keys changed since the last round re-run
// (-no-incremental restores full revalidation). With both -watch and
// -json, each round prints one wire-format JSON report object
// (schema_version-stamped; see internal/report.Wire) to stdout, flushed
// per round so pipe consumers see reports promptly; human-oriented text
// goes to stderr.
//
// Loading is fault tolerant: a malformed or unreadable source is
// quarantined (and, across watch rounds, served from its last good parse
// for up to -max-stale rounds; 0 = forever, negative = never) instead of
// aborting the round, with per-source accounting on stderr. -load-timeout
// bounds each round; the deadline — or Ctrl-C — stops the round
// mid-flight with a partial report marked as interrupted.
//
// The load→compile→validate→report orchestration itself lives in
// internal/runner — the same code path cvserve drives per tenant — so
// this command is only flag parsing, rendering, and the watch loop.
//
// Exit status:
//
//	0  validation ran and found no violations
//	1  validation ran and found violations (or spec errors)
//	2  usage, specification or compilation error
//	3  every configuration source failed to load — nothing was validated
//
// A degraded round that still has data (some sources fresh or stale)
// validates normally and exits 0 or 1; only a round with nothing at all
// to validate exits 3.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"confvalley"
	"confvalley/internal/runner"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath    = fs.String("spec", "", "CPL specification file (required)")
		parallel    = fs.Int("parallel", 0, "validate specifications in N parallel partitions (0 = one per hardware thread, 1 = sequential)")
		stop        = fs.Bool("stop", false, "stop at the first violation")
		asJSON      = fs.Bool("json", false, "emit the report as wire-format JSON")
		watch       = fs.Duration("watch", 0, "revalidate at this interval when spec or data files change (0 = run once)")
		interp      = fs.Bool("interpret", false, "execute via the AST interpreter instead of lowered plans")
		rounds      = fs.Int("watch-rounds", 0, "with -watch, exit after this many validation rounds (0 = forever; for tests)")
		noInc       = fs.Bool("no-incremental", false, "with -watch, fully revalidate every round instead of re-running only the specs affected by changed keys")
		loadTimeout = fs.Duration("load-timeout", 0, "bound each validation round (loading plus validation); 0 = no bound")
		maxStale    = fs.Int("max-stale", 0, "serve a failing source from its last good parse for at most N watch rounds (0 = forever, negative = never)")
		doLint      = fs.Bool("lint", false, "run the static-analysis passes over the specification before validating; error-severity findings reject the spec (exit 2)")
		version     = fs.Bool("version", false, "print the ConfValley version and exit")
		data        dataFlags
	)
	fs.Var(&data, "data", "configuration source as format:path[:scope]; repeatable")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "cvcheck version %s (report schema v%d)\n", confvalley.Version, confvalley.ReportSchemaVersion)
		return 0
	}
	if *specPath == "" {
		fmt.Fprintln(stderr, "cvcheck: -spec is required")
		fs.Usage()
		return 2
	}

	// -data arguments are validated up front: a malformed flag is a usage
	// error (exit 2), unlike a source that later fails to load.
	var dataSources []confvalley.Source
	for _, d := range data {
		format, path, scope, err := splitDataArg(d)
		if err != nil {
			fmt.Fprintf(stderr, "cvcheck: %v\n", err)
			return 2
		}
		dataSources = append(dataSources, confvalley.Source{Name: path, Format: format, Scope: scope})
	}

	// Ctrl-C / SIGTERM cancels the run: loading stops between sources and
	// validation between specifications, and the partial report — clearly
	// marked as interrupted — is still rendered.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The runner persists across watch rounds: one session (so the
	// compiled program and its cached executable plan survive rounds
	// where only data changed), one graceful-degradation loader (so a
	// source torn mid-write in round N serves round N-1's parse), and
	// the swap-in of each round's freshly built store.
	incremental := *watch > 0 && !*noInc
	r := runner.New(runner.Options{
		Parallel:    *parallel,
		StopOnFirst: *stop,
		Interpret:   *interp,
		Incremental: incremental,
		MaxStale:    *maxStale,
		LoadTimeout: *loadTimeout,
		SpecDir:     filepath.Dir(*specPath),
		Env:         confvalley.HostEnv(),
		Lint:        *doLint,
	})

	validateOnce := func(ctx context.Context) int {
		res, err := r.Run(ctx, runner.Job{SpecPath: *specPath, Sources: dataSources})
		if err != nil {
			var le *runner.LintError
			if errors.As(err, &le) {
				for _, d := range le.Diagnostics {
					fmt.Fprintln(stderr, d)
				}
			}
			fmt.Fprintf(stderr, "cvcheck: %v\n", err)
			return 2
		}
		// Lint findings below error severity are advisory: printed to
		// stderr, no effect on the exit code.
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stderr, d)
		}
		if res.Data != nil {
			for _, o := range res.Data.Outcomes {
				if o.Err == "" {
					fmt.Fprintf(stderr, "cvcheck: loaded %d instance(s) from %s\n", o.Instances, o.Source)
				}
			}
			res.Data.Render(stderr)
		}
		if res.SpecLoads != nil {
			res.SpecLoads.Render(stderr)
		}
		if incremental {
			rep := res.Report
			fmt.Fprintf(stderr, "cvcheck: re-ran %d/%d specs (%d reused)\n",
				rep.SpecsRun-rep.SpecsReused, rep.SpecsRun, rep.SpecsReused)
		}
		switch {
		case *asJSON && *watch > 0:
			// Watch mode emits one compact wire-format JSON object per
			// round on stdout — a machine-consumable JSONL stream,
			// flushed per round; all human-oriented text (round banners,
			// load counts, re-run stats) stays on stderr.
			b, err := res.Report.EncodeWire()
			if err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(b))
			flush(stdout)
		case *asJSON:
			b, err := res.Report.EncodeWireIndented()
			if err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(b))
		default:
			if err := res.Report.Render(stdout); err != nil {
				fmt.Fprintf(stderr, "cvcheck: %v\n", err)
				return 2
			}
		}
		if res.AllSourcesFailed() {
			fmt.Fprintf(stderr, "cvcheck: every configuration source failed to load; nothing was validated\n")
		}
		return res.Code()
	}

	if *watch <= 0 {
		return validateOnce(ctx)
	}
	return watchLoop(ctx, *specPath, data, *watch, *rounds, validateOnce)
}

// flush pushes buffered output through to the consumer. Watch mode's
// JSONL stream is only useful if each round's report is visible as soon
// as the round ends — a pipe consumer must not wait for a buffer to
// fill (or the process to exit) to see round 1.
func flush(w io.Writer) {
	switch f := w.(type) {
	case interface{ Flush() error }:
		f.Flush()
	case interface{ Flush() }:
		f.Flush()
	case interface{ Sync() error }:
		f.Sync()
	}
}

// watchLoop revalidates whenever the specification file or any data file
// changes, polling modification times at the given interval. maxRounds
// bounds the number of validation rounds (0 = unbounded); the exit code
// is the last round's. Context cancellation (Ctrl-C) ends the loop after
// the in-flight round, returning its code.
func watchLoop(ctx context.Context, specPath string, data []string, interval time.Duration, maxRounds int, validate func(context.Context) int) int {
	files := []string{specPath}
	for _, d := range data {
		if _, path, _, err := splitDataArg(d); err == nil {
			files = append(files, path)
		}
	}
	stamp := func() string {
		var b strings.Builder
		for _, f := range files {
			if info, err := os.Stat(f); err == nil {
				fmt.Fprintf(&b, "%s=%d/%d;", f, info.ModTime().UnixNano(), info.Size())
			} else {
				fmt.Fprintf(&b, "%s=gone;", f)
			}
		}
		return b.String()
	}

	last := ""
	code := 0
	for round := 0; ; {
		now := stamp()
		if now != last {
			last = now
			round++
			fmt.Fprintf(os.Stderr, "cvcheck: validation round %d\n", round)
			code = validate(ctx)
			if maxRounds > 0 && round >= maxRounds {
				return code
			}
		}
		select {
		case <-ctx.Done():
			return code
		case <-time.After(interval):
		}
	}
}

// splitDataArg parses format:path[:scope] through the shared runner
// helper (cvcall accepts the same syntax).
func splitDataArg(arg string) (format, path, scope string, err error) {
	src, err := runner.ParseSourceArg(arg)
	if err != nil {
		return "", "", "", fmt.Errorf("bad -data %q; want format:path[:scope]", arg)
	}
	return src.Format, src.Name, src.Scope, nil
}
