package main

import "testing"

func TestSplitDataArg(t *testing.T) {
	cases := []struct {
		in                  string
		format, path, scope string
		ok                  bool
	}{
		{"xml:/etc/settings.xml", "xml", "/etc/settings.xml", "", true},
		{"ini:/etc/app.ini:Fabric", "ini", "/etc/app.ini", "Fabric", true},
		{"kv:rel/path.kv", "kv", "rel/path.kv", "", true},
		{`xml:C:\conf\a.xml`, "xml", `C:\conf\a.xml`, "", true},               // drive colon is not a scope
		{"json:/a/b.json:Scope.Sub", "json", "/a/b.json:Scope.Sub", "", true}, // dotted tail looks like a path
		{"nocolon", "", "", "", false},
		{":path", "", "", "", false},
	}
	for _, c := range cases {
		format, path, scope, err := splitDataArg(c.in)
		if c.ok != (err == nil) {
			t.Errorf("splitDataArg(%q) err = %v", c.in, err)
			continue
		}
		if !c.ok {
			continue
		}
		if format != c.format || path != c.path || scope != c.scope {
			t.Errorf("splitDataArg(%q) = %q,%q,%q; want %q,%q,%q",
				c.in, format, path, scope, c.format, c.path, c.scope)
		}
	}
}
