package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSplitDataArg(t *testing.T) {
	cases := []struct {
		in                  string
		format, path, scope string
		ok                  bool
	}{
		{"xml:/etc/settings.xml", "xml", "/etc/settings.xml", "", true},
		{"ini:/etc/app.ini:Fabric", "ini", "/etc/app.ini", "Fabric", true},
		{"kv:rel/path.kv", "kv", "rel/path.kv", "", true},
		{`xml:C:\conf\a.xml`, "xml", `C:\conf\a.xml`, "", true},               // drive colon is not a scope
		{"json:/a/b.json:Scope.Sub", "json", "/a/b.json:Scope.Sub", "", true}, // dotted tail looks like a path
		{"nocolon", "", "", "", false},
		{":path", "", "", "", false},
	}
	for _, c := range cases {
		format, path, scope, err := splitDataArg(c.in)
		if c.ok != (err == nil) {
			t.Errorf("splitDataArg(%q) err = %v", c.in, err)
			continue
		}
		if !c.ok {
			continue
		}
		if format != c.format || path != c.path || scope != c.scope {
			t.Errorf("splitDataArg(%q) = %q,%q,%q; want %q,%q,%q",
				c.in, format, path, scope, c.format, c.path, c.scope)
		}
	}
}

func writeTestFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// -lint rejects a spec with error-severity findings (exit 2) and prints
// the diagnostics before the failure line.
func TestLintFlagRejectsContradiction(t *testing.T) {
	dir := t.TempDir()
	spec := writeTestFile(t, dir, "bad.cpl", "$app.timeout -> [10, 5]\n")
	data := writeTestFile(t, dir, "conf.kv", "app.timeout = 30\n")
	var out, errOut bytes.Buffer
	code := run([]string{"-lint", "-spec", spec, "-data", "kv:" + data}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "CV101") || !strings.Contains(errOut.String(), "failed lint") {
		t.Errorf("stderr missing diagnostics:\n%s", errOut.String())
	}
}

// Advisory (sub-error) findings print to stderr but validation proceeds.
func TestLintFlagAdvisory(t *testing.T) {
	dir := t.TempDir()
	spec := writeTestFile(t, dir, "warn.cpl", "let Unused := int\n$app.timeout -> int\n")
	data := writeTestFile(t, dir, "conf.kv", "app.timeout = 30\n")
	var out, errOut bytes.Buffer
	code := run([]string{"-lint", "-spec", spec, "-data", "kv:" + data}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "CV401") {
		t.Errorf("advisory diagnostic not printed:\n%s", errOut.String())
	}
}

// Without -lint, the same spec validates with no lint output at all.
func TestNoLintByDefault(t *testing.T) {
	dir := t.TempDir()
	spec := writeTestFile(t, dir, "warn.cpl", "let Unused := int\n$app.timeout -> int\n")
	data := writeTestFile(t, dir, "conf.kv", "app.timeout = 30\n")
	var out, errOut bytes.Buffer
	code := run([]string{"-spec", spec, "-data", "kv:" + data}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr:\n%s", code, errOut.String())
	}
	if strings.Contains(errOut.String(), "CV401") {
		t.Errorf("lint ran without -lint:\n%s", errOut.String())
	}
}
