package main

// The -watch -json JSONL stream must be flushed after every round: a
// pipe consumer tails the stream live and cannot wait for a buffer to
// fill or the process to exit to see a round's report.

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"confvalley"
)

// TestWatchJSONFlushedPerRound runs a two-round watch session writing
// through a large bufio.Writer and asserts round 1's report reaches the
// underlying sink while the session is still running — i.e. before
// anything could have implicitly flushed at exit.
func TestWatchJSONFlushedPerRound(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.cpl")
	data := filepath.Join(dir, "d.kv")
	if err := os.WriteFile(spec, []byte("$app.timeout -> int & [1, 60]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data, []byte("app.timeout = 30\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var sink syncBuffer
	// Big enough that two compact reports never fill it on their own:
	// only explicit flushes make output visible.
	stdout := bufio.NewWriterSize(&sink, 1<<20)
	var errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-spec", spec, "-data", "kv:" + data, "-watch", "5ms", "-json", "-watch-rounds", "2"}, stdout, &errb)
	}()

	// Round 1's JSON line must appear in the sink while the watch session
	// is still alive, waiting for a change to trigger round 2.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(sink.String(), "\n") {
		select {
		case code := <-done:
			t.Fatalf("watch session exited early (code %d) before stream check:\n%s", code, errb.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("round 1 report never flushed to the pipe; buffered output withheld.\nstderr:\n%s", errb.String())
		}
		time.Sleep(time.Millisecond)
	}

	first := strings.SplitN(sink.String(), "\n", 2)[0]
	w, err := confvalley.DecodeReportWire([]byte(first))
	if err != nil {
		t.Fatalf("round 1 stream line is not a wire report: %v\n%s", err, first)
	}
	if w.SchemaVersion != confvalley.ReportSchemaVersion || !w.Passed {
		t.Errorf("round 1 wire report: schema=%d passed=%t", w.SchemaVersion, w.Passed)
	}

	// Trigger round 2 and let the session finish.
	if err := os.WriteFile(data, []byte("app.timeout = 400\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 1 {
			t.Errorf("final round exit code = %d, want 1 (violation)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch session did not finish after round 2")
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want 2:\n%s", len(lines), sink.String())
	}
	w2, err := confvalley.DecodeReportWire([]byte(lines[1]))
	if err != nil {
		t.Fatal(err)
	}
	if w2.Passed || len(w2.Violations) != 1 {
		t.Errorf("round 2 wire report: passed=%t violations=%d", w2.Passed, len(w2.Violations))
	}
}

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCvcheck(t, "-version")
	if code != 0 {
		t.Fatalf("-version exited %d", code)
	}
	if !strings.Contains(out, confvalley.Version) {
		t.Errorf("-version output lacks the version constant: %q", out)
	}
}

// Without -watch, -json emits the indented wire encoding.
func TestJSONOnceIsWireFormat(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.cpl")
	data := filepath.Join(dir, "d.kv")
	if err := os.WriteFile(spec, []byte("$app.timeout -> int & [1, 60]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data, []byte("app.timeout = 400\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCvcheck(t, "-spec", spec, "-data", "kv:"+data, "-json")
	if code != 1 {
		t.Fatalf("violating -json run exited %d, want 1", code)
	}
	w, err := confvalley.DecodeReportWire([]byte(out))
	if err != nil {
		t.Fatalf("-json output is not wire format: %v\n%s", err, out)
	}
	if w.Passed || len(w.Violations) != 1 {
		t.Errorf("wire report: passed=%t violations=%d", w.Passed, len(w.Violations))
	}
}
