package main

// End-to-end exit-code contract of the cvcheck binary, driven through
// run(): 0 clean, 1 violations, 2 usage/spec errors, 3 every source
// failed. Degraded-but-nonempty rounds still validate and exit 0/1.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCvcheck(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeClean(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"s.cpl": "$app.timeout -> int & [1, 60]\n",
		"d.kv":  "app.timeout = 30\n",
	})
	code, out, _ := runCvcheck(t, "-spec", filepath.Join(dir, "s.cpl"), "-data", "kv:"+filepath.Join(dir, "d.kv"))
	if code != 0 {
		t.Fatalf("clean run exited %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "0 violation(s)") {
		t.Fatalf("report not rendered:\n%s", out)
	}
}

func TestExitCodeViolations(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"s.cpl": "$app.timeout -> int & [1, 60]\n",
		"d.kv":  "app.timeout = 400\n",
	})
	code, out, _ := runCvcheck(t, "-spec", filepath.Join(dir, "s.cpl"), "-data", "kv:"+filepath.Join(dir, "d.kv"))
	if code != 1 {
		t.Fatalf("violating run exited %d, want 1\n%s", code, out)
	}
}

func TestExitCodeUsageErrors(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"s.cpl":   "$a -> int\n",
		"bad.cpl": "$$ not cpl at all\n",
	})
	cases := []struct {
		name string
		args []string
	}{
		{"missing -spec", nil},
		{"unknown flag", []string{"-spec", filepath.Join(dir, "s.cpl"), "-bogus"}},
		{"bad -data arg", []string{"-spec", filepath.Join(dir, "s.cpl"), "-data", "nocolon"}},
		{"missing spec file", []string{"-spec", filepath.Join(dir, "absent.cpl")}},
		{"spec does not compile", []string{"-spec", filepath.Join(dir, "bad.cpl")}},
	}
	for _, c := range cases {
		if code, _, _ := runCvcheck(t, c.args...); code != 2 {
			t.Errorf("%s: exited %d, want 2", c.name, code)
		}
	}
}

// Every source failing — whether passed via -data or via load commands in
// the spec file — exits 3 with nothing validated.
func TestExitCodeAllSourcesFailed(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"s.cpl":     "$app.timeout -> int\n",
		"torn.json": `{"app":`,
	})
	code, _, errb := runCvcheck(t,
		"-spec", filepath.Join(dir, "s.cpl"),
		"-data", "json:"+filepath.Join(dir, "torn.json"),
		"-data", "json:"+filepath.Join(dir, "absent.json"))
	if code != 3 {
		t.Fatalf("all-failed run exited %d, want 3\n%s", code, errb)
	}
	if !strings.Contains(errb, "QUARANTINED") {
		t.Fatalf("stderr lacks per-source accounting:\n%s", errb)
	}
}

func TestExitCodeAllSpecLoadsFailed(t *testing.T) {
	dir := writeFiles(t, map[string]string{"torn.json": `{"app":`})
	spec := filepath.Join(dir, "s.cpl")
	src := "load 'json' '" + filepath.Join(dir, "torn.json") + "'\n$app.timeout -> int\n"
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := runCvcheck(t, "-spec", spec); code != 3 {
		t.Fatalf("spec-load-failed run exited %d, want 3\n%s", code, errb)
	}
}

// One quarantined source out of two degrades the round but does not
// change the exit code: the surviving data still validates.
func TestExitCodeDegradedStillValidates(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"s.cpl":     "$app.timeout -> int & [1, 60]\n",
		"good.kv":   "app.timeout = 30\n",
		"torn.json": `{"db":`,
	})
	code, _, errb := runCvcheck(t,
		"-spec", filepath.Join(dir, "s.cpl"),
		"-data", "kv:"+filepath.Join(dir, "good.kv"),
		"-data", "json:"+filepath.Join(dir, "torn.json"))
	if code != 0 {
		t.Fatalf("degraded-but-nonempty run exited %d, want 0\n%s", code, errb)
	}
	if !strings.Contains(errb, "QUARANTINED") {
		t.Fatalf("degradation not surfaced on stderr:\n%s", errb)
	}
}

// syncBuffer is a bytes.Buffer safe to poll while run() writes to it
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// A watch session keeps validating against the last good parse when a
// data file is torn mid-write, and surfaces the staleness on stderr.
func TestWatchServesStaleAcrossRounds(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"s.cpl":  "$app.timeout -> int & [1, 60]\n",
		"d.json": `{"app": {"timeout": "30"}}`,
	})
	spec, data := filepath.Join(dir, "s.cpl"), filepath.Join(dir, "d.json")

	var out bytes.Buffer
	var errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-spec", spec, "-data", "json:" + data, "-watch", "5ms", "-watch-rounds", "2"}, &out, &errb)
	}()

	// Wait for round 1 to record the good parse before tearing the file.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(errb.String(), "loaded 1 instance(s)") {
		if time.Now().After(deadline) {
			t.Fatalf("round 1 never loaded the good file:\n%s", errb.String())
		}
		time.Sleep(time.Millisecond)
	}
	if err := os.WriteFile(data, []byte(`{"app":`), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("stale-served watch run exited %d, want 0\n%s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "STALE") {
			t.Fatalf("staleness not surfaced on stderr:\n%s", errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch run did not complete two rounds")
	}
}
