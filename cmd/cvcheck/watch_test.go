package main

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchLoopRevalidatesOnChange(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.cpl")
	data := filepath.Join(dir, "d.kv")
	if err := os.WriteFile(spec, []byte("$A -> int"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data, []byte("A = 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	done := make(chan int, 1)
	go func() {
		done <- watchLoop(context.Background(), spec, []string{"kv:" + data}, 5*time.Millisecond, 2, func(context.Context) int {
			runs.Add(1)
			return 0
		})
	}()
	// First round fires immediately; the second after a data change.
	deadline := time.After(2 * time.Second)
	for runs.Load() < 1 {
		select {
		case <-deadline:
			t.Fatal("first round never ran")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := os.WriteFile(data, []byte("A = 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit code = %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch loop did not finish after second round")
	}
	if runs.Load() != 2 {
		t.Errorf("rounds = %d, want 2", runs.Load())
	}
}

func TestWatchLoopStableFilesRunOnce(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.cpl")
	if err := os.WriteFile(spec, []byte("$A -> int"), 0o644); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go watchLoop(ctx, spec, nil, 2*time.Millisecond, 0, func(context.Context) int {
		runs.Add(1)
		return 0
	})
	time.Sleep(60 * time.Millisecond)
	if got := runs.Load(); got != 1 {
		t.Errorf("unchanged files revalidated %d times, want 1", got)
	}
}

// Context cancellation ends an unbounded watch loop, returning the last
// round's exit code.
func TestWatchLoopStopsOnCancel(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.cpl")
	if err := os.WriteFile(spec, []byte("$A -> int"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- watchLoop(ctx, spec, nil, time.Millisecond, 0, func(context.Context) int { return 1 })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 1 {
			t.Errorf("exit code after cancel = %d, want the last round's 1", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled watch loop did not return")
	}
}
