// Command cvbench regenerates every table and figure of the paper's
// evaluation (§6) against the synthetic corpora described in DESIGN.md.
//
// Usage:
//
//	cvbench [-run all|table2|table3|table4|table5|figure5|table6|table7|
//	         table8|table9|figure4|discovery|plan|storecache|incremental|
//	         fault|load|servecache]
//	        [-full] [-scale S] [-seed N]
//
// With -full the corpora are generated at paper scale (Type B holds 2.3
// million instances; expect a multi-gigabyte heap and minutes of wall
// time). Without it, a quick configuration runs everything in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"confvalley"
	"confvalley/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which   = flag.String("run", "all", "experiment to run (comma-separated; see package comment)")
		full    = flag.Bool("full", false, "paper-scale corpora (slow, memory-hungry)")
		scale   = flag.Float64("scale", 0, "override Type A scale (0 = preset)")
		seed    = flag.Int64("seed", 2015, "corpus generation seed")
		version = flag.Bool("version", false, "print the ConfValley version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("cvbench version %s\n", confvalley.Version)
		return 0
	}

	cfg := experiments.Quick(os.Stdout)
	if *full {
		cfg = experiments.Full(os.Stdout)
	}
	if *scale > 0 {
		cfg.ScaleA = *scale
	}
	cfg.Seed = *seed

	want := make(map[string]bool)
	for _, w := range strings.Split(*which, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]
	ran := 0
	sep := func() {
		if ran > 0 {
			fmt.Println()
		}
		ran++
	}

	if all || want["table2"] {
		sep()
		experiments.Table2(cfg)
	}
	if all || want["table3"] {
		sep()
		experiments.Table3(cfg)
	}
	if all || want["table4"] {
		sep()
		experiments.Table4(cfg)
	}
	if all || want["table5"] {
		sep()
		experiments.Table5(cfg)
	}
	if all || want["figure5"] {
		sep()
		experiments.Figure5(cfg)
	}
	if all || want["table6"] || want["table7"] {
		sep()
		experiments.BranchExperiment(cfg)
	}
	if all || want["table8"] {
		sep()
		experiments.Table8(cfg)
	}
	if all || want["table9"] {
		sep()
		experiments.Table9(cfg)
	}
	if all || want["figure4"] {
		sep()
		experiments.Figure4(cfg)
	}
	if all || want["accuracy"] {
		sep()
		experiments.InferenceAccuracy(cfg)
	}
	if all || want["discovery"] {
		sep()
		experiments.Discovery(cfg)
	}
	if all || want["plan"] {
		sep()
		experiments.PlanAblation(cfg)
	}
	if all || want["storecache"] {
		sep()
		experiments.StoreCache(cfg)
	}
	if all || want["incremental"] {
		sep()
		experiments.Incremental(cfg)
	}
	if all || want["fault"] {
		sep()
		experiments.FaultTolerance(cfg)
	}
	if all || want["load"] {
		sep()
		experiments.Load(cfg)
	}
	if all || want["servecache"] {
		sep()
		experiments.ServeCache(cfg)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cvbench: unknown experiment %q\n", *which)
		return 2
	}
	return 0
}
