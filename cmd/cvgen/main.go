// Command cvgen generates the synthetic Azure-like configuration corpora
// described in DESIGN.md (the Type A/B/C data sets of §6), serialized in
// their native formats, so the other tools have realistic inputs.
//
// Usage:
//
//	cvgen -type A|B|C [-scale 0.1] [-seed 42] [-out file]
//	cvgen -type expert [-clusters 40] [-errors N] [-out file]
//
// Type A renders as XML, Type B as flat key-value, Type C as INI; the
// expert corpus renders as key-value with optional injected errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"confvalley"
	"confvalley/internal/azuregen"
	"confvalley/internal/config"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		typ      = flag.String("type", "A", "corpus type: A, B, C, or expert")
		scale    = flag.Float64("scale", 0.1, "fraction of the paper-scale corpus")
		seed     = flag.Int64("seed", 42, "generation seed")
		out      = flag.String("out", "", "output file (default stdout)")
		clusters = flag.Int("clusters", 40, "expert corpus: cluster count")
		errors   = flag.Int("errors", 0, "expert corpus: expert errors to inject")
		version  = flag.Bool("version", false, "print the ConfValley version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("cvgen version %s\n", confvalley.Version)
		return 0
	}

	var data []byte
	switch *typ {
	case "A", "a":
		c := azuregen.GenerateA(*scale, *seed)
		fmt.Fprintf(os.Stderr, "cvgen: Type A — %d classes, %d instances\n", c.Classes, c.Instances)
		data = azuregen.RenderXML(c.Store)
	case "B", "b":
		c := azuregen.GenerateB(*scale, *seed)
		fmt.Fprintf(os.Stderr, "cvgen: Type B — %d classes, %d instances\n", c.Classes, c.Instances)
		data = azuregen.RenderKV(c.Store)
	case "C", "c":
		c := azuregen.GenerateC(*scale, *seed)
		fmt.Fprintf(os.Stderr, "cvgen: Type C — %d classes, %d instances\n", c.Classes, c.Instances)
		data = azuregen.RenderINI(c.Store)
	case "expert":
		st := config.NewStore()
		azuregen.AddExpertSubstrate(st, *clusters, *seed)
		if *errors > 0 {
			inj := azuregen.InjectExpertErrors(st, *clusters, *errors, *seed+1)
			for _, i := range inj {
				fmt.Fprintf(os.Stderr, "cvgen: injected %s at %s\n", i.Kind, i.Key)
			}
		}
		fmt.Fprintf(os.Stderr, "cvgen: expert substrate — %d clusters, %d instances\n", *clusters, st.Len())
		data = azuregen.RenderKV(st)
	default:
		fmt.Fprintf(os.Stderr, "cvgen: unknown -type %q\n", *typ)
		return 2
	}

	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cvgen: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "cvgen: wrote %d bytes to %s\n", len(data), *out)
	return 0
}
