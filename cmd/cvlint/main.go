// Command cvlint runs the CPL static-analysis passes (internal/lint)
// over specification files: contradictions, type mismatches, dead and
// duplicated specs, macro hygiene, incremental-validation performance
// hazards, and — when a configuration snapshot is supplied — corpus
// drift.
//
// Usage:
//
//	cvlint [-json] [-data format:path[:scope]]... [-analyzers a,b]
//	       [-disable a,b] [-fail-on error|warning|info] [-version]
//	       path...
//
// Each path is a .cpl file or a directory walked recursively for .cpl
// files (the specs/lintcorpus fixtures, recognizable by their .want
// golden companions, are skipped when walking). Diagnostics print as
// file:line:col with a severity, a message, and a stable CVnnn code;
// -json switches to the schema_version-stamped wire format shared with
// the validation service. Suppress a finding by appending a
// "// cvlint:disable [CODE,...]" comment to its line.
//
// Exit status:
//
//	0  all files linted clean (at or above the -fail-on threshold)
//	1  diagnostics at or above the -fail-on threshold were reported
//	2  usage error, or a path could not be read
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"confvalley"
	"confvalley/internal/config"
	"confvalley/internal/driver"
	"confvalley/internal/lint"
	"confvalley/internal/runner"
)

type listFlags []string

func (l *listFlags) String() string { return strings.Join(*l, ",") }
func (l *listFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON    = fs.Bool("json", false, "emit diagnostics as schema-stamped JSON")
		analyzers = fs.String("analyzers", "", "run only these analyzers (comma-separated; empty = all)")
		disable   = fs.String("disable", "", "skip these analyzers (comma-separated)")
		failOn    = fs.String("fail-on", "warning", "lowest severity that fails the run: error, warning or info")
		list      = fs.Bool("list", false, "list registered analyzers and exit")
		version   = fs.Bool("version", false, "print version and exit")
		data      listFlags
	)
	fs.Var(&data, "data", "configuration snapshot for data-aware analyses, format:path[:scope]; repeatable")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "cvlint version %s (lint schema v%d)\n", confvalley.Version, lint.SchemaVersion)
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s (%s)\n", a.Name, a.Doc, strings.Join(a.Codes, ", "))
		}
		return 0
	}

	var threshold lint.Severity
	switch *failOn {
	case "error":
		threshold = lint.Error
	case "warning":
		threshold = lint.Warning
	case "info":
		threshold = lint.Info
	default:
		fmt.Fprintf(stderr, "cvlint: bad -fail-on %q; want error, warning or info\n", *failOn)
		return 2
	}

	files, err := collectFiles(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "cvlint: %v\n", err)
		return 2
	}
	if len(files) == 0 {
		fmt.Fprintln(stderr, "usage: cvlint [flags] path...")
		fs.PrintDefaults()
		return 2
	}

	snap, err := loadSnapshot(data)
	if err != nil {
		fmt.Fprintf(stderr, "cvlint: %v\n", err)
		return 2
	}

	opts := lint.Options{Snapshot: snap}
	if *analyzers != "" {
		opts.Analyzers = splitList(*analyzers)
	}
	if *disable != "" {
		opts.Disable = splitList(*disable)
	}

	var results []lint.Result
	failing := 0
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "cvlint: %v\n", err)
			return 2
		}
		fileOpts := opts
		fileOpts.Resolver = func(path string) (string, error) {
			b, err := os.ReadFile(filepath.Join(filepath.Dir(f), path))
			return string(b), err
		}
		res := lint.Run(f, string(src), fileOpts)
		results = append(results, res)
		for _, d := range res.Diagnostics {
			if d.Severity >= threshold {
				failing++
			}
		}
	}

	if *asJSON {
		b, err := lint.MarshalResults(results)
		if err != nil {
			fmt.Fprintf(stderr, "cvlint: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		total := 0
		for _, res := range results {
			for _, d := range res.Diagnostics {
				fmt.Fprintln(stdout, d)
				total++
			}
		}
		errs, warns, infos := 0, 0, 0
		for _, res := range results {
			e, w, i := res.Counts()
			errs, warns, infos = errs+e, warns+w, infos+i
		}
		if total > 0 {
			fmt.Fprintf(stdout, "%d file(s): %d error(s), %d warning(s), %d info(s)\n",
				len(files), errs, warns, infos)
		}
	}

	if failing > 0 {
		return 1
	}
	return 0
}

// collectFiles expands path arguments: files pass through, directories
// are walked for .cpl files. The lintcorpus fixture directory
// (recognized by golden .want companions) is skipped during walks —
// its files are deliberately broken.
func collectFiles(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".cpl") {
				return nil
			}
			if _, err := os.Stat(strings.TrimSuffix(path, ".cpl") + ".want"); err == nil {
				return nil // golden fixture: deliberately broken
			}
			files = append(files, path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// loadSnapshot assembles the -data sources into one store.
func loadSnapshot(args []string) (*config.Store, error) {
	if len(args) == 0 {
		return nil, nil
	}
	st := config.NewStore()
	for _, arg := range args {
		src, err := runner.ParseSourceArg(arg)
		if err != nil {
			return nil, fmt.Errorf("bad -data %q; want format:path[:scope]", arg)
		}
		b, err := os.ReadFile(src.Name)
		if err != nil {
			return nil, err
		}
		if _, err := driver.LoadInto(st, src.Format, b, src.Name, src.Scope); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
