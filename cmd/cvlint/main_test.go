package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runCvlint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCleanFileExitsZero(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "ok.cpl", "$app.timeout -> int\n")
	code, out, _ := runCvlint(t, spec)
	if code != 0 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean run printed %q", out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "bad.cpl", "$app.timeout -> [10, 5]\n")
	code, out, _ := runCvlint(t, spec)
	if code != 1 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "CV101") || !strings.Contains(out, "bad.cpl:1:17") {
		t.Errorf("output missing positioned code:\n%s", out)
	}
}

func TestFailOnThreshold(t *testing.T) {
	dir := t.TempDir()
	// CV401 (unused macro) is warning severity.
	spec := writeFile(t, dir, "warn.cpl", "let Unused := int\n$app.timeout -> int\n")
	if code, out, _ := runCvlint(t, spec); code != 1 {
		t.Fatalf("default threshold: exit = %d\n%s", code, out)
	}
	if code, out, _ := runCvlint(t, "-fail-on", "error", spec); code != 0 {
		t.Fatalf("-fail-on error: exit = %d\n%s", code, out)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _, _ := runCvlint(t); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code, _, _ := runCvlint(t, "/nonexistent/x.cpl"); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
	if code, _, _ := runCvlint(t, "-fail-on", "loud", "x.cpl"); code != 2 {
		t.Errorf("bad -fail-on: exit = %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "bad.cpl", "$app.timeout -> [10, 5]\n")
	code, out, _ := runCvlint(t, "-json", spec)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var w struct {
		SchemaVersion int `json:"schema_version"`
		Errors        int `json:"errors"`
		Results       []struct {
			File        string `json:"file"`
			Diagnostics []struct {
				Code     string `json:"code"`
				Severity string `json:"severity"`
				Line     int    `json:"line"`
			} `json:"diagnostics"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &w); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if w.SchemaVersion != 1 || w.Errors != 1 || len(w.Results) != 1 {
		t.Errorf("wire = %+v", w)
	}
	d := w.Results[0].Diagnostics[0]
	if d.Code != "CV101" || d.Severity != "error" || d.Line != 1 {
		t.Errorf("diagnostic = %+v", d)
	}
}

func TestDirectoryWalkSkipsGoldenFixtures(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "ok.cpl", "$app.timeout -> int\n")
	// A fixture pair: broken spec + .want golden must be skipped.
	writeFile(t, dir, "fixture.cpl", "$app.timeout -> [10, 5]\n")
	writeFile(t, dir, "fixture.want", "1:17 CV101 ...\n")
	code, out, _ := runCvlint(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d; fixture not skipped?\n%s", code, out)
	}
}

func TestDataSnapshotEnablesDrift(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "conf.yaml", "app:\n  timeout: \"30\"\n")
	spec := writeFile(t, dir, "drift.cpl", "$app.timeout -> int\n$app.timeot -> int\n")
	code, out, _ := runCvlint(t, "-data", "yaml:"+data, spec)
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "CV601") || !strings.Contains(out, "app.timeot") {
		t.Errorf("drift diagnostic missing:\n%s", out)
	}
	if strings.Contains(out, "app.timeout matches no instance") {
		t.Errorf("live reference flagged:\n%s", out)
	}
}

func TestAnalyzerSelectionFlags(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "bad.cpl", "$app.timeout -> [10, 5]\n")
	if code, out, _ := runCvlint(t, "-disable", "contradiction", spec); code != 0 {
		t.Fatalf("-disable: exit = %d\n%s", code, out)
	}
	if code, out, _ := runCvlint(t, "-analyzers", "macro", spec); code != 0 {
		t.Fatalf("-analyzers: exit = %d\n%s", code, out)
	}
}

func TestShippedSpecsDirLintsClean(t *testing.T) {
	code, out, errOut := runCvlint(t, "../../specs")
	if code != 0 {
		t.Fatalf("shipped specs dirty: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}
