package confvalley

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"confvalley/internal/compiler"
	"confvalley/internal/config"
	"confvalley/internal/driver"
	"confvalley/internal/engine"
	"confvalley/internal/infer"
	"confvalley/internal/ingest"
	"confvalley/internal/report"
	"confvalley/internal/simenv"
)

// Session is a validation session: configuration sources loaded into the
// unified representation, plus the environment and options validation
// runs under. It supports the three usage scenarios of §5.1 — batch
// validation, interactive one-liners, and editor-style instant checks —
// through Validate, Check and ValidateProgram.
//
// Option fields and registrations are not safe for concurrent mutation,
// but validation may overlap with SwapStore: each run pins the store's
// sealed snapshot at start, and the engine parallelizes internally
// (one worker per hardware thread unless Parallel says otherwise).
type Session struct {
	store atomic.Pointer[config.Store]
	env   simenv.Env

	// Parallel sets the validation worker count: 0 or negative uses one
	// worker per hardware thread, 1 forces sequential execution, and
	// N > 1 uses exactly N workers (always clamped to the spec count).
	Parallel int
	// StopOnFirst aborts validation at the first violation.
	StopOnFirst bool
	// Interpret forces direct AST interpretation instead of the lowered
	// plan executor — an escape hatch and semantic oracle; the two paths
	// produce identical reports.
	Interpret bool
	// Incremental enables delta-driven revalidation: ValidateProgram
	// retains each run's (snapshot, report) pair, and the next run of
	// the *same* compiled program re-executes only the specifications
	// whose static footprint overlaps the keys that changed since, with
	// the rest spliced from the cached report (engine.RunIncremental).
	// The retained pair survives SwapStore — a fresh store's snapshot is
	// diffed against the previous one, which is exactly cvcheck's
	// watch-round pattern. Incremental rounds assume the environment is
	// unchanged between runs; call SetEnv only before the first run.
	Incremental bool
	// SpecDir resolves relative include paths; defaults to the working
	// directory.
	SpecDir string
	// Degrade switches the program's load commands to graceful
	// degradation: a malformed or unreachable source is quarantined (or
	// served from its last good parse, within MaxStale rounds) instead
	// of aborting validation, with the per-source accounting retained in
	// LastLoadReport. Without it, the first load failure aborts — the
	// strict historical behavior.
	Degrade bool
	// MaxStale bounds how many consecutive rounds a failing source may
	// be served from its last good parse under Degrade; 0 = forever,
	// negative = never serve stale. Set it before the first validation.
	MaxStale int

	// registered in-memory spec files for hermetic includes.
	includes map[string]string
	// registered in-memory data sources for hermetic loads.
	sources map[string][]byte

	// last retains the most recent validated (program, snapshot, report)
	// triple for Incremental mode. All three are immutable once stored,
	// so concurrent rounds may race on the pointer safely; last writer
	// wins and the loser's state is simply not reused.
	last atomic.Pointer[lastRun]

	// loader retains last-good parses across Degrade-mode loads; lazily
	// built with the session's MaxStale.
	loader atomic.Pointer[ingest.Loader]
	// loadRep retains the most recent Degrade-mode load report.
	loadRep atomic.Pointer[ingest.LoadReport]
}

// lastRun is one completed validation retained for incremental reuse.
type lastRun struct {
	prog *compiler.Program
	snap *config.Snapshot
	rep  *report.Report
}

// NewSession returns an empty session with a simulated environment.
func NewSession() *Session {
	s := &Session{
		env:      simenv.NewSim(),
		includes: make(map[string]string),
		sources:  make(map[string][]byte),
	}
	s.store.Store(config.NewStore())
	return s
}

// Store exposes the unified configuration representation.
func (s *Session) Store() *config.Store { return s.store.Load() }

// SwapStore atomically replaces the session's configuration store and
// returns the previous one. Validations already in flight pinned the
// old store's snapshot when they started and finish against it
// undisturbed; runs that start after the swap see the new store.
// cvcheck's watch mode uses this to swap in a freshly loaded store when
// data files change instead of mutating a live one.
func (s *Session) SwapStore(st *config.Store) *config.Store {
	return s.store.Swap(st)
}

// SetEnv replaces the environment used by dynamic predicates.
func (s *Session) SetEnv(env Env) { s.env = env }

// Env returns the current environment.
func (s *Session) Env() Env { return s.env }

// LoadData parses raw configuration bytes with the named driver and adds
// the instances, optionally prefixed with a scope.
func (s *Session) LoadData(format string, data []byte, sourceName, scope string) (int, error) {
	return driver.LoadInto(s.store.Load(), format, data, sourceName, scope)
}

// LoadFile reads a configuration file from disk and loads it. The format
// defaults from the file extension when empty.
func (s *Session) LoadFile(format, path, scope string) (int, error) {
	return LoadFileInto(s.store.Load(), format, path, scope)
}

// LoadFileInto reads a configuration file from disk and loads it into an
// arbitrary store, without touching any session. The format defaults
// from the file extension when empty. Watch-style callers use it to
// build a fresh store off to the side and SwapStore it in atomically.
func LoadFileInto(st *config.Store, format, path, scope string) (int, error) {
	if format == "" {
		format = FormatFromPath(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("confvalley: reading %s: %w", path, err)
	}
	return driver.LoadInto(st, format, data, path, scope)
}

// RegisterSource installs an in-memory data source that CPL load commands
// can reference by name, keeping sessions hermetic (the rest driver's
// endpoint registry serves the same purpose for REST loads).
func (s *Session) RegisterSource(name string, data []byte) {
	s.sources[name] = data
}

// RegisterInclude installs an in-memory specification file for CPL
// include commands.
func (s *Session) RegisterInclude(name, src string) {
	s.includes[name] = src
}

// FormatFromPath guesses a driver name from a file extension.
func FormatFromPath(path string) string { return ingest.FormatFromPath(path) }

// Compile parses and compiles CPL source, resolving includes from
// registered in-memory files first and the spec directory second.
func (s *Session) Compile(src string) (*Program, error) {
	return compiler.CompileWith(src, compiler.Options{
		Optimize: true,
		Resolver: s.resolveInclude,
	})
}

func (s *Session) resolveInclude(path string) (string, error) {
	if src, ok := s.includes[path]; ok {
		return src, nil
	}
	full := path
	if s.SpecDir != "" && !filepath.IsAbs(path) {
		full = filepath.Join(s.SpecDir, path)
	}
	b, err := os.ReadFile(full)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ValidateProgram executes a compiled program: load commands first (from
// registered sources or disk), then every specification.
func (s *Session) ValidateProgram(prog *Program) (*Report, error) {
	return s.ValidateProgramContext(context.Background(), prog)
}

// ValidateProgramContext is ValidateProgram under a caller-supplied
// context: a deadline or cancellation stops loading between sources and
// validation between specifications, returning the partial report marked
// Interrupted. With Degrade set, per-source load failures quarantine (or
// serve last-good stale data) instead of aborting; the load accounting
// lands in LastLoadReport.
func (s *Session) ValidateProgramContext(ctx context.Context, prog *Program) (*Report, error) {
	rep, _, err := s.RunProgram(ctx, prog, s.store.Load())
	return rep, err
}

// RunProgram is the context-first core every validation entry point —
// and the service layer — shares: it executes a compiled program's load
// commands into an explicit store, validates against that store's
// sealed snapshot, and returns the report plus the per-source
// accounting of the program's own load commands (nil when the program
// has none or Degrade is off). Because the store is an argument rather
// than the session field, concurrent callers validating different
// stores never contaminate each other: each run pins the snapshot of
// exactly the store it was handed, no matter how SwapStore calls
// interleave. ValidateProgramContext is RunProgram on the session's
// current store.
func (s *Session) RunProgram(ctx context.Context, prog *Program, st *Store) (*Report, *LoadReport, error) {
	specLoads, err := s.execLoads(ctx, prog, st)
	if err != nil {
		return nil, nil, err
	}
	eng := s.engineFor(st)
	if !s.Incremental {
		return eng.RunContext(ctx, prog), specLoads, nil
	}
	var rep *report.Report
	if last := s.last.Load(); last != nil && last.prog == prog {
		rep = eng.RunIncrementalContext(ctx, prog, last.snap, last.rep)
	} else {
		// First round, or a different program: full run seeds the cache.
		rep = eng.RunContext(ctx, prog)
	}
	if rep.Interrupted {
		// An interrupted round's verdict set is incomplete: keep the
		// previous round's state so the next incremental round splices
		// from something sound.
		return rep, specLoads, nil
	}
	s.last.Store(&lastRun{prog: prog, snap: eng.PinnedSnapshot(), rep: rep})
	return rep, specLoads, nil
}

// RunState is one completed validation run's retained (program,
// snapshot, report) triple, handed back by RunProgramIncremental for
// the caller to thread into its next call. It is the externalized form
// of the session-internal Incremental state: where the Incremental
// option serves one watch loop per session, explicit RunStates let a
// multi-tenant service keep independent incremental lineages per
// registered spec without forking sessions. A RunState is immutable;
// sharing one across concurrent runs is safe.
type RunState struct {
	run lastRun
}

// Report returns the state's retained validation report.
func (rs *RunState) Report() *Report {
	if rs == nil {
		return nil
	}
	return rs.run.rep
}

// RunProgramIncremental is RunProgram with caller-held incremental
// state instead of the session-retained kind. When prev was produced by
// an earlier call with the *same* compiled program, validation goes
// through engine.RunIncremental — only specifications whose footprint
// overlaps the keys changed between prev's snapshot and this store's
// are re-executed, the rest spliced from prev's report — and the result
// is byte-identical to a full run (modulo Duration and SpecsReused). A
// nil or mismatched prev runs the full path. The returned state
// reflects this run, except after an interrupted run, whose incomplete
// verdict set must not seed future splices: prev comes back unchanged.
func (s *Session) RunProgramIncremental(ctx context.Context, prog *Program, st *Store, prev *RunState) (*Report, *LoadReport, *RunState, error) {
	specLoads, err := s.execLoads(ctx, prog, st)
	if err != nil {
		return nil, nil, prev, err
	}
	eng := s.engineFor(st)
	var rep *report.Report
	if prev != nil && prev.run.prog == prog {
		rep = eng.RunIncrementalContext(ctx, prog, prev.run.snap, prev.run.rep)
	} else {
		rep = eng.RunContext(ctx, prog)
	}
	if rep.Interrupted {
		return rep, specLoads, prev, nil
	}
	return rep, specLoads, &RunState{run: lastRun{prog: prog, snap: eng.PinnedSnapshot(), rep: rep}}, nil
}

// execLoads runs the program's load commands into the store, strict or
// degraded per the session options.
func (s *Session) execLoads(ctx context.Context, prog *Program, st *Store) (*LoadReport, error) {
	if s.Degrade {
		return s.degradeLoads(ctx, prog, st), nil
	}
	for _, ld := range prog.Loads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.execLoad(ctx, ld, st); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// engineFor builds the engine one validation run uses, capturing the
// session's execution options.
func (s *Session) engineFor(st *Store) *engine.Engine {
	return &engine.Engine{
		Store: st,
		Env:   s.env,
		Opts: engine.Options{
			StopOnFirst: s.StopOnFirst,
			Parallel:    s.Parallel,
			Interpret:   s.Interpret,
		},
	}
}

// degradeLoads executes the program's load commands through the
// session's graceful-degradation loader into the given store.
func (s *Session) degradeLoads(ctx context.Context, prog *Program, st *Store) *LoadReport {
	if len(prog.Loads) == 0 {
		return nil
	}
	l := s.loader.Load()
	if l == nil {
		l = ingest.NewLoader(s.MaxStale)
		if !s.loader.CompareAndSwap(nil, l) {
			l = s.loader.Load()
		}
	}
	sources := make([]ingest.Source, 0, len(prog.Loads))
	for _, ld := range prog.Loads {
		sources = append(sources, s.ingestSource(ld))
	}
	rep := l.Load(ctx, st, sources)
	s.loadRep.Store(rep)
	return rep
}

// ingestSource maps one CPL load command to an ingest source: registered
// in-memory data first, REST endpoints by URL, files last.
func (s *Session) ingestSource(ld compiler.Load) ingest.Source {
	src := ingest.Source{Name: ld.Source, Format: ld.Driver, Scope: ld.Scope}
	if data, ok := s.sources[ld.Source]; ok {
		src.Fetch = func(context.Context) ([]byte, error) { return data, nil }
	} else if ld.Driver == "rest" {
		// The rest driver resolves its transport itself; the bytes are
		// the endpoint URL.
		src.Fetch = func(context.Context) ([]byte, error) { return []byte(ld.Source), nil }
	}
	return src
}

// LastLoadReport returns the per-source accounting of the most recent
// Degrade-mode load, or nil when none has run.
func (s *Session) LastLoadReport() *LoadReport { return s.loadRep.Load() }

// LastReport returns the report retained by the most recent Incremental
// validation round, or nil when none has run.
func (s *Session) LastReport() *Report {
	if last := s.last.Load(); last != nil {
		return last.rep
	}
	return nil
}

func (s *Session) execLoad(ctx context.Context, ld compiler.Load, st *Store) error {
	src := s.ingestSource(ld)
	data, err := []byte(nil), error(nil)
	if src.Fetch != nil {
		data, err = src.Fetch(ctx)
	} else {
		data, err = os.ReadFile(ld.Source)
		if err != nil {
			return fmt.Errorf("confvalley: reading %s: %w", ld.Source, err)
		}
	}
	if err != nil {
		return err
	}
	format := ld.Driver
	if format == "" {
		format = FormatFromPath(ld.Source)
	}
	ins, err := driver.ParseScoped(ctx, format, data, ld.Source, ld.Scope)
	if err != nil {
		return err
	}
	st.AddAll(ins)
	return nil
}

// Validate compiles CPL source and runs it against the session:
// the batch scenario.
func (s *Session) Validate(src string) (*Report, error) {
	prog, err := s.Compile(src)
	if err != nil {
		return nil, err
	}
	return s.ValidateProgram(prog)
}

// Check validates a single specification line against the session — the
// interactive console scenario (§5.1). Unlike Validate it reports
// success/failure compactly and never mutates session state.
func (s *Session) Check(line string) (*Report, error) {
	prog, err := s.Compile(line)
	if err != nil {
		return nil, err
	}
	if len(prog.Loads) > 0 {
		return nil, fmt.Errorf("confvalley: Check does not execute load commands; use Validate")
	}
	eng := engine.Engine{Store: s.store.Load(), Env: s.env, Opts: engine.Options{Interpret: s.Interpret}}
	return eng.Run(prog), nil
}

// CheckSyntax parses and compiles CPL without executing anything — the
// editor scenario (§5.1): instant feedback while specifications are
// typed, catching syntax errors, unknown predicates, bad arities and
// undefined macros before the data is ever touched.
func (s *Session) CheckSyntax(src string) error {
	_, err := s.Compile(src)
	return err
}

// Infer mines validation specifications from the session's configuration
// data, assumed to be a known-good snapshot.
func (s *Session) Infer(opts InferenceOptions) *InferenceResult {
	return infer.Infer(s.store.Load(), opts)
}

// InferCPL mines specifications and renders them as a CPL file.
func (s *Session) InferCPL() string {
	return s.Infer(infer.Defaults()).GenerateCPL()
}

// Instances returns the instances matching a CPL notation, the "get"
// console command.
func (s *Session) Instances(notation string) ([]*Instance, error) {
	pat, err := config.ParsePattern(notation)
	if err != nil {
		return nil, err
	}
	return s.store.Load().Discover(pat), nil
}

// RenderReport writes a report in the standard human-readable layout.
func RenderReport(rep *Report, w interface{ Write([]byte) (int, error) }) error {
	return rep.Render(w)
}

var _ = report.Report{} // keep the report import explicit for the aliases
