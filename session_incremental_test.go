package confvalley

import (
	"context"
	"fmt"
	"testing"

	"confvalley/internal/config"
)

// Caller-held incremental state: repeated and low-churn runs against
// explicit stores reuse verdicts across calls without the session
// retaining anything, and the spliced reports match full runs exactly.
func TestRunProgramIncrementalExplicitState(t *testing.T) {
	s := NewSession()
	prog, err := s.Compile("$App.timeout -> int & [1, 60]\n$App.retries -> int & [0, 5]\n")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	build := func(timeout string) *config.Store {
		st := config.NewStore()
		st.Add(&config.Instance{Key: config.K("App", "timeout"), Value: timeout})
		st.Add(&config.Instance{Key: config.K("App", "retries"), Value: "2"})
		return st
	}

	rep1, _, state, err := s.RunProgramIncremental(ctx, prog, build("30"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if state == nil || rep1.SpecsReused != 0 || !rep1.Passed() {
		t.Fatalf("seed run: reused=%d passed=%t state=%v", rep1.SpecsReused, rep1.Passed(), state)
	}
	if state.Report() != rep1 {
		t.Error("state does not retain the seeding report")
	}

	// Churn one key: the touched spec re-runs, the other splices.
	rep2, _, state2, err := s.RunProgramIncremental(ctx, prog, build("400"), state)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SpecsReused != 1 {
		t.Errorf("churn run reused %d specs, want 1", rep2.SpecsReused)
	}
	if len(rep2.Violations) != 1 || rep2.Violations[0].Key != "App.timeout" {
		t.Errorf("churn run violations = %+v", rep2.Violations)
	}
	full, _, _, err := s.RunProgramIncremental(ctx, prog, build("400"), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep2.Clone(), full.Clone()
	a.Duration, a.SpecsReused, b.Duration = 0, 0, 0
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if string(aj) != string(bj) {
		t.Errorf("incremental diverged from full:\n%s\n%s", aj, bj)
	}

	// A state from a different program never splices.
	other, err := s.Compile("$App.timeout -> int\n")
	if err != nil {
		t.Fatal(err)
	}
	rep3, _, _, err := s.RunProgramIncremental(ctx, other, build("400"), state2)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.SpecsReused != 0 {
		t.Errorf("mismatched program reused %d specs, want 0", rep3.SpecsReused)
	}
}

// An interrupted run hands the previous state back unchanged so the
// next round splices from a complete verdict set.
func TestRunProgramIncrementalInterruptedKeepsState(t *testing.T) {
	s := NewSession()
	var src string
	for i := 0; i < 8; i++ {
		src += fmt.Sprintf("$App.p%d -> int\n", i)
	}
	prog, err := s.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *config.Store {
		st := config.NewStore()
		for i := 0; i < 8; i++ {
			st.Add(&config.Instance{Key: config.K("App", fmt.Sprintf("p%d", i)), Value: "1"})
		}
		return st
	}

	_, _, state, err := s.RunProgramIncremental(context.Background(), prog, build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	rep, _, after, err := s.RunProgramIncremental(canceled, prog, build(), state)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Skip("run completed before cancellation took effect")
	}
	if after != state {
		t.Error("interrupted run replaced the retained state")
	}
}
