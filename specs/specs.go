// Package specs ships the CPL specification suites used throughout the
// evaluation — the declarative rewrites of the imperative validation
// modules in internal/legacy (Tables 3 and 4 of the paper) — together
// with the sample configuration data the open-source suites validate.
package specs

import (
	"embed"
	"strings"
)

//go:embed *.cpl *.yaml *.json
var files embed.FS

// mustRead returns an embedded file's contents.
func mustRead(name string) string {
	b, err := files.ReadFile(name)
	if err != nil {
		panic("specs: missing embedded file " + name + ": " + err.Error())
	}
	return string(b)
}

// AzureTypeA returns the 17-specification expert suite for the Type A
// cluster substrate (the Table 3 "Type A" rewrite and the Table 6 expert
// specifications).
func AzureTypeA() string { return mustRead("azure_type_a.cpl") }

// AzureTypeB returns the 62-specification suite for the Type B per-node
// data (the Table 3 "Type B" rewrite).
func AzureTypeB() string { return mustRead("azure_type_b.cpl") }

// AzureTypeC returns the 6-specification suite for the Type C service
// settings (the Table 3 "Type C" rewrite).
func AzureTypeC() string { return mustRead("azure_type_c.cpl") }

// OpenStack returns the 19-specification suite rewritten from Rubick-style
// checks (Table 4).
func OpenStack() string { return mustRead("openstack.cpl") }

// CloudStack returns the 15-specification suite rewritten from
// CloudStack's scattered imperative checks (Table 4).
func CloudStack() string { return mustRead("cloudstack.cpl") }

// OpenStackConfig returns the sample OpenStack YAML configuration.
func OpenStackConfig() []byte { return []byte(mustRead("openstack.yaml")) }

// CloudStackConfig returns the sample CloudStack JSON configuration.
func CloudStackConfig() []byte { return []byte(mustRead("cloudstack.json")) }

// Suites enumerates the suite names with their sources, for the LoC
// measurements of cmd/cvbench.
func Suites() map[string]string {
	return map[string]string{
		"azure_type_a": AzureTypeA(),
		"azure_type_b": AzureTypeB(),
		"azure_type_c": AzureTypeC(),
		"openstack":    OpenStack(),
		"cloudstack":   CloudStack(),
	}
}

// CountLoC counts non-blank, non-comment lines of CPL source.
func CountLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// CountSpecs counts the validation statements in a CPL suite:
// specification statements plus condition statements, excluding comments,
// block braces and commands — the "Count" column of Tables 3 and 4.
func CountSpecs(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		switch {
		case t == "" || strings.HasPrefix(t, "//"):
		case strings.HasPrefix(t, "compartment") || strings.HasPrefix(t, "namespace"):
		case t == "}" || t == "{":
		case strings.HasPrefix(t, "let ") || strings.HasPrefix(t, "load ") ||
			strings.HasPrefix(t, "include ") || strings.HasPrefix(t, "policy "):
		default:
			n++
		}
	}
	return n
}
