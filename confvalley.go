// Package confvalley is a systematic configuration validation framework
// for cloud services, a from-scratch Go implementation of the system
// described in "ConfValley: A Systematic Configuration Validation
// Framework for Cloud Services" (EuroSys 2015).
//
// ConfValley has three parts:
//
//   - CPL, a declarative specification language for configuration
//     constraints ("$Fabric.Timeout -> int & [5, 15]"), with namespaces,
//     compartments, transformations and quantifiers;
//   - a validation engine that discovers every instance of the referenced
//     configuration classes across diverse sources (XML, INI, JSON, YAML,
//     key-value, CSV, REST) and checks the constraints, producing
//     triage-friendly reports;
//   - an inference engine that mines specifications from known-good
//     configuration data, so most basic constraints never have to be
//     written by hand.
//
// The Session type ties the three together:
//
//	s := confvalley.NewSession()
//	_ = s.LoadData("ini", []byte("timeout = 30"), "app.ini", "App")
//	rep, err := s.Validate("$App.timeout -> int & [1, 60]")
//	if err != nil { ... }
//	if !rep.Passed() { rep.Render(os.Stdout) }
package confvalley

import (
	"confvalley/internal/compiler"
	"confvalley/internal/config"
	"confvalley/internal/infer"
	"confvalley/internal/ingest"
	"confvalley/internal/plan"
	"confvalley/internal/predicate"
	"confvalley/internal/report"
	"confvalley/internal/simenv"
	"confvalley/internal/transform"
	"confvalley/internal/value"
)

// Version identifies this ConfValley build. Every command accepts a
// -version flag that prints it, and the cvserve health endpoint reports
// it so clients can tell what they are talking to.
const Version = "0.7.0"

// ReportSchemaVersion is the version stamped on wire-encoded reports
// (Report.EncodeWire); see internal/report.SchemaVersion.
const ReportSchemaVersion = report.SchemaVersion

// Re-exported result and configuration types. The aliases keep the public
// surface in one import while the implementation stays in internal
// packages.
type (
	// Report is a validation run's outcome.
	Report = report.Report
	// ReportWire is the versioned, stable JSON form of a Report — the
	// machine contract emitted by cvcheck -json and cvserve.
	ReportWire = report.Wire
	// Violation is one failed check.
	Violation = report.Violation
	// Severity ranks violations.
	Severity = report.Severity
	// Instance is one configuration instance in the unified
	// representation.
	Instance = config.Instance
	// Key is a fully-qualified configuration instance key.
	Key = config.Key
	// Pattern is a CPL configuration notation.
	Pattern = config.Pattern
	// Store is the unified configuration representation: a staging area
	// for loads plus sealed snapshots that discovery reads lock-free.
	Store = config.Store
	// Snapshot is one sealed, immutable view of a Store.
	Snapshot = config.Snapshot
	// Program is a compiled CPL unit.
	Program = compiler.Program
	// InferenceResult holds mined constraints.
	InferenceResult = infer.Result
	// InferenceOptions tunes the mining heuristics.
	InferenceOptions = infer.Options
	// Env answers dynamic predicate queries (path existence,
	// reachability, host facts).
	Env = simenv.Env
	// SimEnv is a fully simulated Env.
	SimEnv = simenv.Sim
	// Source describes one configuration source for graceful-degradation
	// loading (file path, REST endpoint, or custom fetch).
	Source = ingest.Source
	// SourceOutcome is one source's per-round load result.
	SourceOutcome = ingest.Outcome
	// LoadReport aggregates a load round's per-source outcomes:
	// fresh/stale/quarantined accounting for degraded ingestion.
	LoadReport = ingest.LoadReport
	// Loader loads source batches with graceful degradation, retaining
	// each source's last good parse across validation rounds.
	Loader = ingest.Loader
)

// Severity levels for validation policies.
const (
	Info     = report.Info
	Warning  = report.Warning
	Error    = report.Error
	Critical = report.Critical
)

// NewSimEnv returns an empty simulated environment; add paths and
// endpoints before validating specifications that use the exists or
// reachable predicates.
func NewSimEnv() *SimEnv { return simenv.NewSim() }

// HostEnv returns an environment backed by the real host: filesystem
// checks hit the disk, the clock and OS name are real, and reachability
// is always false (validation must not probe the network).
func HostEnv() Env { return simenv.Host{} }

// DefaultInferenceOptions returns the paper's inference heuristics
// (§4.5): 95% type-conformance threshold, ln(n) ≥ |set| enumeration rule
// with at most 10 members, equality clustering ignoring values shorter
// than 6 characters and classes with fewer than 20 instances.
func DefaultInferenceOptions() InferenceOptions { return infer.Defaults() }

// ParsePattern parses a CPL configuration notation such as
// "Cloud::CO2test2.Tenant.SecretKey".
func ParsePattern(s string) (Pattern, error) { return config.ParsePattern(s) }

// NewStore returns an empty configuration store. Most callers let
// NewSession build one; watch-style callers construct stores off to the
// side, fill them with LoadFileInto, and Session.SwapStore them in.
func NewStore() *Store { return config.NewStore() }

// DecodeReportWire parses a wire-encoded report produced by
// Report.EncodeWire (or by cvserve / cvcheck -json), rejecting schema
// versions newer than this build understands.
func DecodeReportWire(b []byte) (*ReportWire, error) { return report.DecodeWire(b) }

// NewLoader returns a graceful-degradation loader. maxStale bounds how
// many consecutive rounds a failing source is served from its last good
// parse before it degrades to quarantined (0 = forever, negative =
// never serve stale).
func NewLoader(maxStale int) *Loader { return ingest.NewLoader(maxStale) }

// PlanCacheStats reports cumulative hits and misses of the executable
// plan cache. A program validated repeatedly (watch mode, benchmarks,
// long-lived sessions) is lowered once and should count one miss
// followed by hits.
func PlanCacheStats() (hits, misses uint64) { return plan.CacheStats() }

// ---- Language extension (§4.2.6) ----
//
// CPL grows without compiler changes: register a predicate or a
// transformation and use it from specifications immediately. The paper
// reports ~70 lines of C# per new predicate; here it is one function.

type (
	// Value is a runtime value flowing through CPL evaluation: a scalar
	// string, or a list/tuple produced by transformations.
	Value = value.V
	// PredicateFunc is a plug-in predicate: a named boolean check over
	// one element with literal arguments and environment access.
	PredicateFunc = predicate.Func
	// TransformFunc is a plug-in transformation, map-like (per element)
	// or reduce-like (whole domain).
	TransformFunc = transform.Func
)

// Transformation styles for TransformFunc.
const (
	TransformMap    = transform.Map
	TransformReduce = transform.Reduce
)

// ScalarValue wraps a raw string as a Value.
func ScalarValue(raw string) Value { return value.Scalar(raw) }

// ListValue builds a list Value.
func ListValue(elems []Value) Value { return value.ListOf(elems) }

// RegisterPredicate installs a plug-in predicate, immediately usable in
// CPL ("$Commit -> gitsha"). Registering a duplicate name panics.
func RegisterPredicate(f *PredicateFunc) { predicate.Register(f) }

// RegisterTransform installs a plug-in transformation, immediately usable
// in CPL pipelines ("$Endpoint -> hostpart() -> hostname"). Registering a
// duplicate name panics.
func RegisterTransform(f *TransformFunc) { transform.Register(f) }
